package core

import (
	"errors"
	"fmt"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/fec"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/trace"
)

// connState is the connection state machine phase.
type connState uint8

const (
	stClosed connState = iota
	stSynSent
	stSynRcvd
	stEstablished
	stFinWait // FIN sent, awaiting FINACK
	stDead    // closed or reset
)

func (s connState) String() string {
	switch s {
	case stClosed:
		return "closed"
	case stSynSent:
		return "syn-sent"
	case stSynRcvd:
		return "syn-rcvd"
	case stEstablished:
		return "established"
	case stFinWait:
		return "fin-wait"
	case stDead:
		return "dead"
	default:
		return "invalid"
	}
}

// Machine errors.
var (
	ErrClosed       = errors.New("core: connection closed")
	ErrPayloadEmpty = errors.New("core: empty message")
)

// sendPkt is one outgoing DATA packet's bookkeeping.
type sendPkt struct {
	seq     uint32
	msgID   uint32
	frag    uint16
	fragCnt uint16
	flags   uint8
	payload []byte
	attrs   *attr.List

	sentAt   time.Duration
	deadline time.Duration // absolute; 0 = none (DEADLINE attribute)
	txCount  int
	rtxEpoch uint64 // loss episode this packet was last retransmitted in
	sacked   bool   // acknowledged out of order (EACK)
	skipped  bool   // abandoned: receiver will be forwarded past it
}

func (p *sendPkt) marked() bool { return p.flags&packet.FlagMarked != 0 }

// done reports whether the packet no longer occupies the flight window.
func (p *sendPkt) done() bool { return p.sacked || p.skipped }

// Machine is one endpoint of an IQ-RUDP connection. It is not safe for
// concurrent use; the driver serialises all calls (see package doc).
type Machine struct {
	cfg Config
	env Env

	state     connState
	connID    uint32
	initiator bool

	// Stateless address validation (see packet.RETRY and internal/guard). A
	// dialer challenged with RETRY echoes the server's cookie at the head of
	// every subsequent SYN; one challenge per handshake is honoured so a
	// reflected RETRY cannot livelock the open.
	cookie      []byte
	retried     bool   // a RETRY was already honoured this handshake
	synPayload  []byte // scratch for cookie-block + resume-token SYN payloads
	synAckTries int    // SYNACK retransmissions this handshake (capped)

	// Send side.
	sndISN     uint32
	sndNxt     uint32     // next sequence number to assign
	sndUna     uint32     // oldest unacknowledged sequence number
	pending    []*sendPkt // segmented, not yet transmitted (ring from pendHead)
	pendHead   int        // index of the queue head within pending
	flight     []*sendPkt // transmitted, not yet cumulatively acked
	inFlight   int        // flight entries not yet done() — kept incrementally
	sackedCnt  int        // flight entries with sacked set — gates loss scans
	spFree     []*sendPkt // sendPkt freelist (see getSendPkt/putSendPkt)
	nextMsgID  uint32
	lastAck    uint32 // last cumulative ack seen
	dupAcks    int
	inRecovery bool   // a loss episode is being repaired
	recoverTo  uint32 // episode ends when sndUna passes this
	epoch      uint64 // loss-episode counter
	peerWnd    uint16 // last advertised window from peer
	fwdSeq     uint32 // forward point: everything below is acked or skipped
	fwdPending bool   // fwdSeq must be communicated

	// Receive side.
	rcvNxt   uint32
	ooo      map[uint32]*packet.Packet // out-of-order buffer
	reasm    *reassembler
	peerTol  float64 // peer's (receiver) declared loss tolerance — our budget when sending
	localTol float64

	// Adaptive reliability accounting (sender side): fraction of application
	// messages not delivered must stay within peerTol.
	relMsgsTotal   uint64          // messages offered by the application
	relMsgsDropped uint64          // messages discarded or skipped (≥1 fragment lost)
	skippedMsgs    map[uint32]bool // msgIDs with at least one skipped fragment

	cc   *congestion
	rtt  *rttEstimator
	meas *measurement
	coo  *coordinator

	// Forward-erasure repair (see fec.go). The encoder exists only when both
	// sides negotiated FEC at the handshake; the decoder is built lazily on
	// the first REPAIR packet. Every field is nil/zero on a FEC-off
	// connection, so the hooks on the hot paths reduce to untaken nil checks.
	fecEnc        *fec.Encoder
	fecDec        *fec.Decoder
	peerFecGroup  int             // peer's advertised decode group size (0 = no FEC)
	fecBaseK      int             // negotiated group-size ceiling for adaptation
	fecQueue      []fec.Recovered // reconstructed packets awaiting re-injection
	fecDraining   bool            // drainFecQueue reentrancy guard
	fecFlushTimer Timer           // partial-group flush timer
	fecFlushFn    func()          // cached onFecFlush method value

	reg *attr.Registry

	// tr receives structured events at every decision point; nil disables
	// tracing (see trace.go for the instrumentation wrappers).
	tr trace.Tracer

	// Observability (see obs.go): optional histogram set, the always-on
	// flight-recorder ring feeding tr alongside cfg.Tracer, and the black-box
	// snapshot taken on abnormal close.
	hs         *Hists
	flightRing *trace.Ring
	flightRec  *FlightRecord

	// Callbacks.
	upperThresh, lowerThresh float64
	onUpper, onLower         ThresholdCallback
	onEstablished            func()
	onWritable               func()
	onClosed                 func()

	// Timers. Every timer callback clears its field on entry (see the
	// Env.After contract: a fired Timer handle is spent and must not be
	// retained), and each callback is cached as a method value at
	// construction so re-arming never allocates a closure.
	rtxTimer    Timer
	rtxAt       time.Duration // absolute fire time of the armed rtx timer
	rtxIsProbe  bool          // armed for a forward-point probe, not an RTO
	rtxExpireFn func()        // cached onRtxExpire method value (no per-arm closure)
	connTimer   Timer
	synRetryFn  func() // cached onSynRetry method value
	finRetryFn  func() // cached onFinRetry method value
	measTicker  Timer

	closing     bool   // Close requested; FIN once the pipeline drains
	closeReason string // why the connection died; set exactly once by abortWith
	tolDirty    bool   // localTol changed; piggyback on next ack

	lastHeard    time.Duration // when the peer was last heard from
	lastSent     time.Duration // when we last emitted anything
	liveTimer    Timer
	liveFn       func()        // cached onLiveTick method value
	liveInterval time.Duration // keepalive probe period, set by startLiveness
	paceTimer    Timer         // armed while a paced transmission gap is pending
	paceFn       func()        // cached onPaceGap method value

	metrics Metrics

	// Receiver-side delivery stats (also exposed in Metrics).
	arrivals *stats.Arrivals

	// Emission scratch. Every outgoing packet is staged here: the Env.Emit
	// contract lets the environment borrow the packet only for the duration
	// of the call, so a single staging area serves all emissions without
	// allocating. outEacks is the staged EACK list's backing storage.
	out      packet.Packet
	outEacks []uint32
}

// NewMachine builds a machine over env. Call StartClient or StartServer to
// begin the handshake.
func NewMachine(cfg Config, env Env) *Machine {
	cfg.sanitize()
	isn := uint32(1)
	if cfg.InitialSeq != 0 {
		isn = cfg.InitialSeq
	}
	m := &Machine{
		cfg:    cfg,
		env:    env,
		connID: cfg.ConnID,
		sndISN: isn,
		// SYN/SYNACK consume the ISN; data starts at ISN+1, matching the
		// peer's rcvNxt after the handshake.
		sndNxt:      isn + 1,
		sndUna:      isn + 1,
		rcvNxt:      0,
		ooo:         make(map[uint32]*packet.Packet),
		skippedMsgs: make(map[uint32]bool),
		cc:          newCongestion(&cfg),
		rtt:         newRTTEstimator(cfg.RTOMin, cfg.RTOMax),
		reg:         attr.NewRegistry(),
		localTol:    cfg.LossTolerance,
		peerWnd:     cfg.RecvWindow,
		arrivals:    stats.NewArrivals(false),
		tr:          cfg.Tracer,
		hs:          cfg.Hists,
	}
	if cfg.FlightEvents > 0 {
		m.flightRing = trace.NewRing(cfg.FlightEvents)
		m.tr = trace.Multi(cfg.Tracer, m.flightRing)
	}
	m.reasm = newReassembler(m)
	m.meas = newMeasurement(m)
	m.coo = newCoordinator(m)
	m.rtxExpireFn = m.onRtxExpire
	m.synRetryFn = m.onSynRetry
	m.finRetryFn = m.onFinRetry
	m.paceFn = m.onPaceGap
	m.liveFn = m.onLiveTick
	m.reg.Set(attr.LossTolerance, attr.Float(m.localTol))
	return m
}

// Registry returns the connection's shared quality-attribute registry. The
// transport publishes NET_* metrics there each measurement period; the
// application may publish its own attributes (e.g. LOSS_TOLERANCE).
func (m *Machine) Registry() *attr.Registry { return m.reg }

// State returns a debugging name for the connection phase.
func (m *Machine) State() string { return m.state.String() }

// ConnID returns the wire connection ID (zero on the passive side until the
// initiator's SYN is adopted).
func (m *Machine) ConnID() uint32 { return m.connID }

// Established reports whether the connection is open for data.
func (m *Machine) Established() bool { return m.state == stEstablished }

// OnEstablished registers fn to run once the handshake completes.
func (m *Machine) OnEstablished(fn func()) { m.onEstablished = fn }

// OnWritable registers fn to run whenever window space frees up after a
// period of blockage. Applications that send "as fast as allowed" drive
// their transmission from this hook.
func (m *Machine) OnWritable(fn func()) { m.onWritable = fn }

// OnClosed registers fn to run when the connection fully closes.
func (m *Machine) OnClosed(fn func()) { m.onClosed = fn }

// RegisterThresholds installs the application's error-ratio callbacks
// (paper §2.1 mechanism 2): onUpper fires when the smoothed error ratio
// reaches upper; onLower when it falls to lower or below. Either callback
// may be nil.
func (m *Machine) RegisterThresholds(upper, lower float64, onUpper, onLower ThresholdCallback) {
	m.upperThresh, m.lowerThresh = upper, lower
	m.onUpper, m.onLower = onUpper, onLower
}

// SetLossTolerance updates this endpoint's receiver loss tolerance at
// runtime; the new value is piggybacked to the peer on the next
// acknowledgement.
func (m *Machine) SetLossTolerance(tol float64) {
	if tol < 0 {
		tol = 0
	}
	if tol > 1 {
		tol = 1
	}
	m.localTol = tol
	m.reg.Set(attr.LossTolerance, attr.Float(tol))
	m.tolDirty = true
}

// StartClient begins an active open (SYN).
func (m *Machine) StartClient() {
	if m.state != stClosed {
		return
	}
	m.initiator = true
	if m.connID == 0 {
		m.connID = 0x1001
	}
	m.setState(stSynSent)
	m.sendSyn()
}

// StartServer begins a passive open: the machine waits for a SYN.
func (m *Machine) StartServer() {
	if m.state != stClosed {
		return
	}
	m.state = stClosed // remains closed until SYN arrives
}

func (m *Machine) sendSyn() {
	// A resuming dialer names its dead predecessor in the SYN payload so
	// ConnID-demultiplexing servers can evict it (see packet.ResumeToken);
	// a RETRY-challenged dialer prepends the server's cookie (see
	// packet.AppendCookieBlock). Both ride the same payload.
	payload := m.cfg.ResumeToken
	if len(m.cookie) > 0 {
		m.synPayload = packet.AppendCookieBlock(m.synPayload[:0], m.cookie)
		m.synPayload = append(m.synPayload, m.cfg.ResumeToken...)
		payload = m.synPayload
	}
	p := &packet.Packet{
		Type:    packet.SYN,
		ConnID:  m.connID,
		Seq:     m.sndISN,
		Wnd:     m.cfg.RecvWindow,
		TS:      m.env.Now(),
		Attrs:   m.handshakeAttrs(),
		Payload: payload,
	}
	m.env.Emit(p)
	m.armConnRetry(m.synRetryFn)
}

// handleRetry honours a stateless address-validation challenge: re-send the
// SYN immediately with the server's cookie echoed in the payload. At most
// one challenge is honoured per handshake, and only while actively opening,
// so a spoofed or reflected RETRY can at worst cost one extra datagram.
//
//iqlint:borrow
func (m *Machine) handleRetry(p *packet.Packet) {
	if m.state != stSynSent || m.retried || len(p.Payload) == 0 || len(p.Payload) > packet.MaxCookieLen {
		return
	}
	m.retried = true
	m.cookie = append(m.cookie[:0], p.Payload...)
	m.sendSyn()
}

// onSynRetry is the cached SYN-retransmission callback: while the active
// open is still unanswered, re-send the SYN (which re-arms the retry).
func (m *Machine) onSynRetry() {
	m.connTimer = nil
	if m.state == stSynSent {
		m.sendSyn()
	}
}

// onFinRetry is the cached FIN-timeout callback: an unanswered FIN gets one
// retry interval before the connection is torn down.
func (m *Machine) onFinRetry() {
	m.connTimer = nil
	if m.state == stFinWait {
		m.abortWith(trace.ReasonFinTimeout) // give up after one retry interval
	}
}

func (m *Machine) armConnRetry(fn func()) {
	if m.connTimer != nil {
		m.connTimer.Stop()
	}
	m.connTimer = m.env.After(m.rtt.RTO(), fn)
}

// establish transitions to the established state exactly once.
func (m *Machine) establish() {
	if m.state == stEstablished {
		return
	}
	m.setState(stEstablished)
	if m.connTimer != nil {
		m.connTimer.Stop()
		m.connTimer = nil
	}
	m.lastHeard = m.env.Now()
	m.lastSent = m.env.Now()
	m.armFec()
	m.startLiveness()
	m.meas.start()
	if m.onEstablished != nil {
		m.onEstablished()
	}
	m.trySend()
}

// Close initiates an orderly shutdown once all pending data is sent and
// acknowledged. Data still queued continues to flow first.
func (m *Machine) Close() {
	switch m.state {
	case stDead, stFinWait:
		return
	case stClosed, stSynSent, stSynRcvd:
		m.abortWith(trace.ReasonAborted)
		return
	}
	m.closing = true
	m.maybeFinish()
}

// maybeFinish sends FIN when the send pipeline is empty.
func (m *Machine) maybeFinish() {
	if !m.closing || m.state != stEstablished {
		return
	}
	if m.pendingLen() > 0 || m.inFlightCount() > 0 {
		return
	}
	// Flush the open partial repair group before the FIN so the flow's tail
	// packets keep their erasure protection.
	if m.fecEnc != nil && m.fecEnc.Pending() > 0 {
		m.emitRepair(trace.ReasonFecFlush)
	}
	m.setState(stFinWait)
	m.out = packet.Packet{
		Type: packet.FIN, ConnID: m.connID, Seq: m.sndNxt, Ack: m.rcvNxt,
		TS: m.env.Now(),
	}
	m.env.Emit(&m.out)
	m.armConnRetry(m.finRetryFn)
}

// Abort tears the machine down immediately — no FIN exchange, no drain.
// Drivers use it for abortive teardown (RST-like local eviction).
func (m *Machine) Abort() { m.abortWith(trace.ReasonAborted) }

// AbortWith is Abort recording an explicit close reason (one of the
// trace.Reason* close-reason constants); drivers use it so teardown causes
// they observe outside the machine — a dead socket, a handshake deadline, a
// resumed successor — surface through CloseReason and the typed error
// taxonomy instead of a generic abort.
func (m *Machine) AbortWith(reason string) { m.abortWith(reason) }

// CloseReason reports why the connection died ("" while it is alive).
// Exactly one reason is recorded per connection, on the transition to the
// dead state; the same value rides the ConnState trace event for that edge.
func (m *Machine) CloseReason() string { return m.closeReason }

func (m *Machine) abortWith(reason string) {
	if m.state == stDead {
		return
	}
	m.closeReason = reason
	m.setStateReason(stDead, reason)
	// Snapshot the black box after the dead edge traced above, so the
	// record's event ring ends with the fatal transition.
	m.snapFlight(reason)
	m.stopTimers()
	// Settle the shared memory ledger before the buffers are torn down, so
	// the serving engine's governor sees this connection's bytes released
	// however it died. The reassembler settles separately via reset.
	m.settleMem()
	m.reasm.reset()
	// Return the out-of-order buffer's pooled clones: abort is the one exit
	// path that bypasses drainOOO/applyFwd, and without this the buffered
	// packets leak from the process-wide freelist accounting.
	for seq, p := range m.ooo {
		delete(m.ooo, seq)
		packet.Put(p)
	}
	if m.onClosed != nil {
		m.onClosed()
	}
}

func (m *Machine) stopTimers() {
	for _, t := range []Timer{m.rtxTimer, m.connTimer, m.measTicker, m.liveTimer, m.paceTimer, m.fecFlushTimer} {
		if t != nil {
			t.Stop()
		}
	}
	m.rtxTimer, m.connTimer, m.measTicker, m.liveTimer, m.paceTimer, m.fecFlushTimer = nil, nil, nil, nil, nil, nil
	m.meas.stop()
}

// startLiveness arms the keepalive/dead-peer loop when configured.
func (m *Machine) startLiveness() {
	interval := m.cfg.Keepalive
	if interval <= 0 && m.cfg.DeadInterval > 0 {
		interval = m.cfg.DeadInterval / 3
	}
	if interval <= 0 {
		return
	}
	m.liveInterval = interval
	m.liveTimer = m.env.After(interval, m.liveFn)
}

// onLiveTick is the cached keepalive/dead-peer callback: probe or abort,
// then re-arm.
func (m *Machine) onLiveTick() {
	m.liveTimer = nil
	if m.state != stEstablished && m.state != stFinWait {
		return
	}
	now := m.env.Now()
	if m.cfg.DeadInterval > 0 && now-m.lastHeard >= m.cfg.DeadInterval {
		m.abortWith(trace.ReasonPeerDead)
		return
	}
	if m.cfg.Keepalive > 0 && now-m.lastSent >= m.cfg.Keepalive {
		m.out = packet.Packet{
			Type: packet.NUL, ConnID: m.connID,
			Seq: m.sndNxt, Ack: m.rcvNxt, Wnd: m.advertiseWnd(), TS: now,
		}
		m.env.Emit(&m.out)
		m.lastSent = now
	}
	m.liveTimer = m.env.After(m.liveInterval, m.liveFn)
}

// NoteTxError records n socket-level transmit failures observed by the
// driver for this connection. Env.Emit cannot return an error — the actual
// write may happen after the machine interaction (batched TX) — so drivers
// report failures here, from the machine's serialisation context, making a
// dead socket visible in Metrics and the trace stream instead of silent.
func (m *Machine) NoteTxError(n uint64, err error) {
	if n == 0 {
		return
	}
	m.metrics.TxErrors += n
	if m.tr != nil {
		reason := ""
		if err != nil {
			reason = err.Error()
		}
		m.tr.Trace(trace.Event{
			Time: m.env.Now(), Type: trace.TxError, ConnID: m.connID,
			Size: int(n), Reason: reason,
		})
	}
}

// HandlePacket feeds one decoded packet into the machine. The machine
// borrows p — including its Payload, Eacks and Attrs backing storage — only
// for the duration of the call: anything it must keep (out-of-order
// buffering, fragment payloads) is copied, so the caller may reuse the
// packet and its buffers as soon as HandlePacket returns.
func (m *Machine) HandlePacket(p *packet.Packet) {
	if m.state == stDead {
		return
	}
	m.lastHeard = m.env.Now()
	switch p.Type {
	case packet.SYN:
		m.handleSyn(p)
	case packet.SYNACK:
		m.handleSynAck(p)
	case packet.DATA:
		m.handleData(p)
	case packet.REPAIR:
		m.handleRepair(p)
	case packet.ACK, packet.EACK:
		m.handleAck(p)
	case packet.NUL:
		m.handleNul(p)
	case packet.FIN:
		m.out = packet.Packet{Type: packet.FINACK, ConnID: m.connID, Ack: p.Seq, TS: m.env.Now()}
		m.env.Emit(&m.out)
		m.abortWith(trace.ReasonRemoteFin)
	case packet.FINACK:
		if m.state == stFinWait {
			m.abortWith(trace.ReasonLocalClose)
		}
	case packet.RETRY:
		m.handleRetry(p)
	case packet.RST:
		if m.state == stEstablished || m.state == stFinWait {
			m.abortWith(trace.ReasonReset)
		} else {
			// RST answering our SYN: the server refused the connection
			// (backlog full, ConnID collision, draining).
			m.abortWith(trace.ReasonRefused)
		}
	}
}

//iqlint:borrow
func (m *Machine) handleSyn(p *packet.Packet) {
	// Passive side: adopt the initiator's connection ID, record its window
	// and tolerance, reply SYNACK. Retransmitted SYNs re-trigger the reply.
	if m.state == stClosed || m.state == stSynRcvd {
		m.connID = p.ConnID
		m.setState(stSynRcvd)
		m.peerWnd = p.Wnd
		m.rcvNxt = p.Seq + 1
		if tol, err := p.Attrs.Float(attr.LossTolerance); err == nil {
			m.peerTol = tol
		}
		if v, err := p.Attrs.Int(attr.FECGroup); err == nil && v > 0 {
			m.peerFecGroup = int(v)
		}
		m.sendSynAck(p.TS)
		// Retry until the initiator's first ACK or DATA establishes us: the
		// SYNACK (or the final handshake leg) can be lost. A fresh SYN
		// restarts the retry budget — only a peer that goes silent mid-
		// handshake exhausts it (see synAckRetry).
		m.synAckTries = 0
		m.armConnRetry(m.synAckRetry)
	}
}

func (m *Machine) sendSynAck(tsEcho time.Duration) {
	m.env.Emit(&packet.Packet{
		Type:   packet.SYNACK,
		ConnID: m.connID,
		Seq:    m.sndISN,
		Ack:    m.rcvNxt,
		Wnd:    m.cfg.RecvWindow,
		TS:     m.env.Now(),
		TSEcho: tsEcho,
		Attrs:  m.handshakeAttrs(),
	})
}

// handshakeAttrs builds the attribute list both handshake legs carry: the
// local receiver's loss tolerance, plus its FEC decode preference when
// repair is enabled.
func (m *Machine) handshakeAttrs() *attr.List {
	l := attr.NewList(attr.Attr{Name: attr.LossTolerance, Value: attr.Float(m.localTol)})
	if m.cfg.FECGroup > 0 {
		l.Set(attr.FECGroup, attr.Int(int64(m.cfg.FECGroup)))
	}
	return l
}

// maxSynAckRetries bounds SYNACK retransmissions toward a silent initiator.
// Unbounded retries let a single spoofed SYN pin a half-open connection (and
// its timers) forever; the cap turns it into a short-lived, self-cleaning
// allocation. A slow-but-live initiator is unaffected: its retransmitted
// SYNs reset the budget in handleSyn.
const maxSynAckRetries = 8

func (m *Machine) synAckRetry() {
	if m.state != stSynRcvd {
		return
	}
	m.synAckTries++
	if m.synAckTries > maxSynAckRetries {
		m.abortWith(trace.ReasonHandshakeTimeout)
		return
	}
	m.sendSynAck(0)
	m.armConnRetry(m.synAckRetry)
}

//iqlint:borrow
func (m *Machine) handleSynAck(p *packet.Packet) {
	if m.state == stEstablished && m.initiator {
		// Our final handshake ACK was lost; the peer is retrying.
		m.sendAck(false)
		return
	}
	if m.state != stSynSent {
		return
	}
	m.peerWnd = p.Wnd
	m.rcvNxt = p.Seq + 1
	if tol, err := p.Attrs.Float(attr.LossTolerance); err == nil {
		m.peerTol = tol
	}
	if v, err := p.Attrs.Int(attr.FECGroup); err == nil && v > 0 {
		m.peerFecGroup = int(v)
	}
	if p.TSEcho > 0 {
		m.sampleRTT(m.env.Now() - p.TSEcho)
	}
	m.establish()
	// Complete the three-way exchange so the passive side establishes too.
	m.sendAck(false)
}

//iqlint:borrow
func (m *Machine) handleNul(p *packet.Packet) {
	if p.HasFwd() {
		m.applyFwd(p.Fwd)
	}
	// NUL probes elicit an acknowledgement so the sender sees liveness.
	m.sendAck(false)
}

// PeerTolerance returns the loss tolerance declared by the remote receiver.
func (m *Machine) PeerTolerance() float64 { return m.peerTol }

// Metrics returns a snapshot of the transport's measurements. The whole
// snapshot — cumulative counters and the derived gauges — is assembled in
// one place so every field reflects the same machine state. Like every
// other Machine method it must be invoked under the machine lock (the
// driver's serialisation context: udpwire calls it with the connection
// mutex held, the simulator from its single-threaded event loop), which
// makes the returned value fully consistent.
func (m *Machine) Metrics() Metrics {
	mt := m.metrics
	mt.SRTT = m.rtt.SRTT()
	mt.RTTVar = m.rtt.RTTVar()
	mt.ErrorRatio = m.meas.smoothed()
	mt.RawRatio = m.meas.lastRaw()
	mt.RateBps = m.meas.rate()
	mt.Cwnd = m.cc.Window()
	mt.InFlight = m.inFlightCount()
	return mt
}

// String summarises the connection for debugging.
func (m *Machine) String() string {
	return fmt.Sprintf("iqrudp(%s id=%d una=%d nxt=%d cwnd=%.1f loss=%.3f)",
		m.state, m.connID, m.sndUna, m.sndNxt, m.cc.Window(), m.meas.smoothed())
}
