package core

import "time"

// congestion implements IQ-RUDP's window-based controller. It is TCP-like —
// slow start then additive increase — but its multiplicative decrease
// resembles the Loss-Delay Adjustment algorithm: the reduction is
// proportional to the measured loss ratio, w ← w·max(0.5, 1−eratio), instead
// of an unconditional halving. That produces the smoother window evolution
// (and better delay/jitter than TCP) that Table 1 of the paper reports.
// A TCP-style halving decrease is available as an ablation.
type congestion struct {
	cwnd     float64
	ssthresh float64
	maxCwnd  float64
	initial  float64
	halving  bool // ablation: TCP-style decrease
	frozen   bool // DisableCC: window never changes

	lastDecrease time.Duration
	decreases    uint64
}

func newCongestion(cfg *Config) *congestion {
	c := &congestion{
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.MaxCwnd / 2,
		maxCwnd:  cfg.MaxCwnd,
		initial:  cfg.InitialCwnd,
		halving:  cfg.HalvingDecrease,
		frozen:   cfg.DisableCC,
	}
	if cfg.DisableCC {
		c.cwnd = cfg.FixedWindow
	}
	return c
}

// Window returns the current congestion window in packets (≥1).
func (c *congestion) Window() float64 {
	if c.cwnd < 1 {
		return 1
	}
	return c.cwnd
}

// OnAck grows the window for n newly acknowledged packets. limited reports
// whether the flow was window-limited when the ack arrived; growth is gated
// on it (congestion window validation, RFC 2861) so application-limited
// periods do not bank unused window that would later burst into the queue.
func (c *congestion) OnAck(n int, limited bool) {
	if c.frozen || n <= 0 || !limited {
		return
	}
	for i := 0; i < n; i++ {
		if c.cwnd < c.ssthresh {
			c.cwnd++ // slow start: one packet per acked packet
		} else {
			c.cwnd += 1 / c.cwnd // congestion avoidance: ~one per RTT
		}
	}
	if c.cwnd > c.maxCwnd {
		c.cwnd = c.maxCwnd
	}
}

// OnLoss applies a multiplicative decrease for a loss event detected at time
// now with smoothed loss ratio eratio. Decreases are limited to one per
// smoothed RTT so a burst of losses within a window counts once.
func (c *congestion) OnLoss(now time.Duration, srtt time.Duration, eratio float64) {
	if c.frozen {
		return
	}
	guard := srtt
	if guard <= 0 {
		guard = 100 * time.Millisecond
	}
	if c.decreases > 0 && now-c.lastDecrease < guard {
		return
	}
	// Loss-proportional decrease, bounded: mild congestion backs off by a
	// quarter (smoother than TCP's halving — the source of IQ-RUDP's
	// delay/jitter advantage), severe congestion floors at TCP-equivalent
	// halving so the flow stays fair and clears the queue it built.
	factor := 1 - eratio
	if factor > 0.75 {
		factor = 0.75
	}
	if factor < 0.5 {
		factor = 0.5
	}
	if c.halving {
		factor = 0.5
	}
	c.cwnd *= factor
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	c.ssthresh = c.cwnd
	c.lastDecrease = now
	c.decreases++
}

// OnTimeout collapses the window after a retransmission timeout.
func (c *congestion) OnTimeout(now time.Duration) {
	if c.frozen {
		return
	}
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 2 {
		c.ssthresh = 2
	}
	c.cwnd = c.initial
	c.lastDecrease = now
	c.decreases++
}

// Rescale multiplies the window by factor — the coordination hook (Cases 2
// and 3): after an application resolution adaptation the transport grows its
// packet window to keep the byte rate at the connection's fair share.
// The result is clamped to [1, maxCwnd]; ssthresh follows so the controller
// does not immediately re-enter slow start.
func (c *congestion) Rescale(factor float64) {
	if c.frozen || factor <= 0 {
		return
	}
	c.cwnd *= factor
	if c.cwnd < 1 {
		c.cwnd = 1
	}
	if c.cwnd > c.maxCwnd {
		c.cwnd = c.maxCwnd
	}
	if c.cwnd > c.ssthresh {
		c.ssthresh = c.cwnd
	}
}
