package core_test

import (
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/trace"
)

// The ThresholdCallback contract: at most one callback fires per
// measurement period, and when a period satisfies both thresholds the
// upper callback deterministically takes precedence.

func TestThresholdPrecedenceEqualThresholds(t *testing.T) {
	// upper == lower == 0 is the degenerate configuration where a clean
	// period (ratio 0) satisfies both. The upper callback must win — and
	// win every period, never alternating with or yielding to the lower.
	ring := trace.NewRing(256)
	cfg := core.DefaultConfig()
	cfg.Tracer = ring
	r := newRig(t, 77, netem.DefaultDumbbell(), cfg, core.DefaultConfig())

	var upper, lower int
	r.snd.Machine.RegisterThresholds(0, 0,
		func(info core.CallbackInfo) *core.AdaptationReport { upper++; return nil },
		func(info core.CallbackInfo) *core.AdaptationReport { lower++; return nil },
	)
	for i := 0; i < 20; i++ {
		r.snd.Machine.Send(make([]byte, 1000), true)
	}
	r.s.RunUntil(r.s.Now() + 3*time.Second) // several 500 ms periods

	if upper == 0 {
		t.Fatal("upper callback never fired")
	}
	if lower != 0 {
		t.Fatalf("lower callback fired %d times despite upper precedence", lower)
	}
	fired := 0
	for _, ev := range ring.Events() {
		if ev.Type == trace.ThresholdCallbackFired {
			fired++
			if ev.Reason != "upper" {
				t.Fatalf("traced callback %q, want upper", ev.Reason)
			}
			if ev.Kind != "nil" {
				t.Fatalf("traced kind %q for a nil report", ev.Kind)
			}
		}
	}
	if fired != upper {
		t.Fatalf("traced %d firings, callbacks saw %d", fired, upper)
	}
}

func TestThresholdDistinctThresholdsUnaffected(t *testing.T) {
	// With well-separated thresholds and clean traffic only the lower
	// callback fires: the equal-thresholds escape must not resurrect the
	// "upper threshold zero means unregistered" convention's complement.
	r := defaultRig(t, 78)
	var upper, lower int
	r.snd.Machine.RegisterThresholds(0.5, 0.01,
		func(info core.CallbackInfo) *core.AdaptationReport { upper++; return nil },
		func(info core.CallbackInfo) *core.AdaptationReport { lower++; return nil },
	)
	for i := 0; i < 20; i++ {
		r.snd.Machine.Send(make([]byte, 1000), true)
	}
	r.s.RunUntil(r.s.Now() + 3*time.Second)
	if upper != 0 {
		t.Fatalf("upper fired %d times on a clean path", upper)
	}
	if lower == 0 {
		t.Fatal("lower callback never fired")
	}
}
