package core

import (
	"time"

	"github.com/cercs/iqrudp/internal/fec"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/trace"
)

// This file glues the internal/fec repair layer into the protocol machine.
//
// Sender side: every first transmission is folded into the encoder's open
// group (fecOnTransmit, called from transmit); when the group reaches K a
// REPAIR packet is emitted, and a partial group is flushed by a short timer
// so tail packets are not left unprotected. The group size K starts at the
// peer's advertised ceiling and adapts to the measured loss ratio at each
// measurement-period close (fecAdapt).
//
// Receiver side: handleRepair and the handleData hook feed the decoder;
// reconstructed packets are re-framed as DATA and pushed through
// HandlePacket, so reassembly, acknowledgements, tracing and metrics treat
// them exactly like wire arrivals. The acknowledgement a recovery triggers
// is also what cancels the sender's pending retransmission of a marked
// loss — repair and retransmit race, and whichever lands first wins.
//
// REPAIR packets consume no sequence numbers, are never acknowledged and
// never retransmitted: losing one only loses its protection.

// armFec builds the sender-side encoder once the handshake negotiated FEC:
// we enable it locally (cfg.FECGroup > 0) and the peer advertised a
// positive decode group size.
func (m *Machine) armFec() {
	if m.fecEnc != nil || m.cfg.FECGroup <= 0 || m.peerFecGroup <= 0 {
		return
	}
	k := m.peerFecGroup
	if k > fec.GroupMax {
		k = fec.GroupMax
	}
	if k < 2 {
		k = 2
	}
	m.fecBaseK = k
	m.fecEnc = fec.NewEncoder(fec.XOR{}, k)
	m.fecFlushFn = m.onFecFlush
}

// fecOnTransmit folds one first-transmission DATA packet into the open
// repair group. A full group emits its repair immediately; a partial group
// arms the flush timer so a traffic lull (or the end of the flow) does not
// leave the group's packets unprotected.
func (m *Machine) fecOnTransmit(sp *sendPkt) {
	if m.fecEnc.Add(sp.seq, sp.flags, sp.msgID, sp.frag, sp.fragCnt, sp.attrs, sp.payload) {
		m.emitRepair("")
		return
	}
	if m.fecFlushTimer == nil {
		m.fecFlushTimer = m.env.After(m.fecFlushDelay(), m.fecFlushFn)
	}
}

// fecFlushDelay is the partial-group flush horizon: half a round trip, so
// the repair still beats any SACK- or RTO-driven recovery of the packets it
// protects, with a floor for the pre-first-sample case.
func (m *Machine) fecFlushDelay() time.Duration {
	d := m.rtt.SRTT() / 2
	if d < 5*time.Millisecond {
		d = 5 * time.Millisecond
	}
	return d
}

// onFecFlush is the cached flush-timer callback: emit the open partial
// group's repair, if one is still open.
func (m *Machine) onFecFlush() {
	m.fecFlushTimer = nil
	if m.state != stEstablished && m.state != stFinWait {
		return
	}
	if m.fecEnc != nil && m.fecEnc.Pending() > 0 {
		m.emitRepair(trace.ReasonFecFlush)
	}
}

// emitRepair closes the encoder's open group and emits its REPAIR packet:
// Seq carries the group base, FragCnt the span, Payload the parity block.
// reason is "" for a full group, ReasonFecFlush for a partial flush.
func (m *Machine) emitRepair(reason string) {
	base, span, parity, ok := m.fecEnc.Flush()
	if !ok {
		return
	}
	now := m.env.Now()
	m.metrics.FecRepairsSent++
	if m.tr != nil {
		m.tr.Trace(trace.Event{
			Time: now, Type: trace.FecRepairSent, ConnID: m.connID,
			Seq: base, Size: len(parity), Reason: reason,
		})
	}
	m.out = packet.Packet{
		Type:    packet.REPAIR,
		ConnID:  m.connID,
		Seq:     base,
		FragCnt: uint16(span),
		Ack:     m.rcvNxt,
		Wnd:     m.advertiseWnd(),
		TS:      now,
		Payload: parity,
	}
	m.lastSent = now
	m.env.Emit(&m.out)
}

// handleRepair feeds an arriving REPAIR packet to the decoder. The repair
// carries no acknowledgement duties of its own beyond what any packet
// carries (lastHeard was already touched by HandlePacket); it exists purely
// to close reception holes.
//
//iqlint:borrow
func (m *Machine) handleRepair(p *packet.Packet) {
	switch m.state {
	case stSynRcvd:
		m.establish() // traffic from the initiator completes the handshake
	case stEstablished, stFinWait:
	default:
		return
	}
	if m.cfg.FECGroup <= 0 {
		return // we never advertised decode support; ignore
	}
	m.metrics.FecRepairsRecv++
	if m.fecDec == nil {
		m.fecDec = fec.NewDecoder(fec.XOR{}, 0)
	}
	m.fecQueue = m.fecDec.OnRepair(p.Seq, int(p.FragCnt), p.Payload, m.rcvNxt, m.env.Now(), m.fecQueue)
	m.drainFecQueue()
}

// fecOnData records one arriving DATA packet with the decoder (every
// arrival, including duplicates — a retransmission can refill a parked
// group) and re-injects any reconstructions it unlocked.
//
//iqlint:borrow
func (m *Machine) fecOnData(p *packet.Packet) {
	m.fecQueue = m.fecDec.OnData(p.Seq, p.Flags, p.MsgID, p.Frag, p.FragCnt, p.Attrs, p.Payload, m.env.Now(), m.fecQueue)
	if len(m.fecQueue) > 0 {
		m.drainFecQueue()
	}
}

// drainFecQueue re-injects queued reconstructions through HandlePacket.
// Re-injection runs handleData, whose decoder hook may reconstruct further
// packets; those append to the queue and this outermost frame drains them
// (fecDraining guards the recursion).
func (m *Machine) drainFecQueue() {
	if m.fecDraining {
		return
	}
	m.fecDraining = true
	for len(m.fecQueue) > 0 && m.state != stDead {
		r := m.fecQueue[0]
		n := copy(m.fecQueue, m.fecQueue[1:])
		m.fecQueue[n] = fec.Recovered{} // drop buffer references
		m.fecQueue = m.fecQueue[:n]
		m.acceptRecovered(r)
	}
	m.fecDraining = false
}

// acceptRecovered re-frames one reconstructed packet as DATA and feeds it
// through the normal receive path, so everything downstream — reassembly,
// EACK generation, delivery metrics, tracing — treats it exactly like a
// wire arrival.
func (m *Machine) acceptRecovered(r fec.Recovered) {
	now := m.env.Now()
	marked := r.Flags&packet.FlagMarked != 0
	m.metrics.FecRecovered++
	if marked {
		m.metrics.FecRecoveredMarked++
	}
	if m.tr != nil {
		m.tr.Trace(trace.Event{
			Time: now, Type: trace.FecRecovered, ConnID: m.connID,
			Seq: r.Seq, MsgID: r.MsgID, Size: len(r.Payload), Marked: marked,
		})
	}
	if m.hs != nil {
		m.hs.FecRepair.RecordDur(now - r.HoleOpenAt)
	}
	p := packet.Get()
	payload := p.Payload
	*p = packet.Packet{
		Type:    packet.DATA,
		Flags:   r.Flags,
		ConnID:  m.connID,
		Seq:     r.Seq,
		MsgID:   r.MsgID,
		Frag:    r.Frag,
		FragCnt: r.FragCnt,
		Attrs:   r.Attrs,
		Payload: append(payload[:0], r.Payload...),
	}
	m.HandlePacket(p)
	packet.Put(p)
}

// fecAdapt retunes the repair-group size to the smoothed loss ratio at each
// measurement-period close: roughly one repair per expected loss with 2x
// headroom (K = 1/(2·loss)), clamped to [2, negotiated ceiling]. Clean
// networks pay the ceiling's minimum overhead (1/K); lossy networks buy
// denser protection.
func (m *Machine) fecAdapt() {
	if m.fecEnc == nil {
		return
	}
	loss := m.meas.smoothed()
	k := m.fecBaseK
	if loss > 0 {
		if kk := int(1 / (2 * loss)); kk < k {
			k = kk
		}
	}
	if k < 2 {
		k = 2
	}
	prev := m.fecEnc.Group()
	if k == prev {
		return
	}
	m.fecEnc.SetGroup(k)
	if m.tr != nil {
		m.tr.Trace(trace.Event{
			Time: m.env.Now(), Type: trace.FecRateChange, ConnID: m.connID,
			PrevCwnd: float64(prev), Cwnd: float64(k),
			ErrorRatio: loss, Reason: trace.ReasonFecAdapt,
		})
	}
}
