package core

import (
	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/trace"
)

// measurement maintains the transport's periodic network-state measurement:
// per-period error ratio (detected losses over transmissions), its EWMA
// smoothing, and the delivery-rate estimate. At each period boundary it
// publishes the NET_* quality attributes and evaluates the application's
// registered threshold callbacks — the instrumented-transport half of the
// paper's architecture.
type measurement struct {
	m *Machine

	sent  uint64 // DATA transmissions this period
	lost  uint64 // losses detected this period
	bytes uint64 // acked bytes this period

	smoothedRatio *stats.EWMA
	raw           float64
	lastRate      float64
	running       bool
	tickFn        func() // cached onTick method value (no per-arm closure)
}

func newMeasurement(m *Machine) *measurement {
	me := &measurement{m: m, smoothedRatio: stats.NewEWMA(m.cfg.LossRatioAlpha)}
	me.tickFn = me.onTick
	return me
}

func (me *measurement) onSend(n uint64)       { me.sent += n }
func (me *measurement) onLoss(n uint64)       { me.lost += n }
func (me *measurement) onAckedBytes(n uint64) { me.bytes += n }

func (me *measurement) smoothed() float64 { return me.smoothedRatio.Value() }
func (me *measurement) lastRaw() float64  { return me.raw }
func (me *measurement) rate() float64     { return me.lastRate }

// start begins the periodic loop; called when the connection establishes.
func (me *measurement) start() {
	if me.running {
		return
	}
	me.running = true
	me.arm()
}

func (me *measurement) stop() { me.running = false }

func (me *measurement) arm() {
	me.m.measTicker = me.m.env.After(me.m.cfg.MeasurementPeriod, me.tickFn)
}

// onTick is the cached period-boundary callback: close the period and
// re-arm while the loop is running.
func (me *measurement) onTick() {
	me.m.measTicker = nil
	if !me.running || me.m.state == stDead {
		return
	}
	me.tick()
	me.arm()
}

// tick closes a measurement period.
func (me *measurement) tick() {
	m := me.m
	if me.sent > 0 {
		r := float64(me.lost) / float64(me.sent)
		if r > 1 {
			r = 1
		}
		me.raw = r
		me.smoothedRatio.Add(r)
	} else if me.smoothedRatio.Initialized() {
		// Idle period: decay toward zero so stale congestion doesn't pin the
		// smoothed ratio high.
		me.raw = 0
		me.smoothedRatio.Add(0)
	}
	me.lastRate = float64(me.bytes) / m.cfg.MeasurementPeriod.Seconds()
	me.sent, me.lost, me.bytes = 0, 0, 0

	// Export network performance metrics as quality attributes (§2.1/§2.2).
	m.reg.Set(attr.NetLoss, attr.Float(me.smoothed()))
	m.reg.Set(attr.NetRTT, attr.Float(m.rtt.SRTT().Seconds()))
	m.reg.Set(attr.NetRate, attr.Float(me.lastRate))
	m.reg.Set(attr.NetCwnd, attr.Float(m.cc.Window()))
	m.reg.Set(attr.NetRetrans, attr.Int(int64(m.metrics.Retransmits)))

	if m.tr != nil {
		m.tr.Trace(trace.Event{
			Time: m.env.Now(), Type: trace.MeasurementPeriod, ConnID: m.connID,
			RawRatio: me.raw, ErrorRatio: me.smoothed(), RateBps: me.lastRate,
			SRTT: m.rtt.SRTT(), Cwnd: m.cc.Window(),
		})
	}

	m.fecAdapt()
	me.fireCallbacks()
}

// fireCallbacks evaluates the registered thresholds against the raw
// per-period error ratio — the "loss ratio within a measuring period" the
// paper's applications adapt on (the congestion controller uses the
// smoothed ratio instead). Every period ending above the upper threshold
// fires the upper callback; every period at or below the lower threshold
// fires the lower callback. At most one callback fires per period: when a
// period satisfies both thresholds (possible with misconfigured, e.g.
// equal, thresholds) the upper callback deterministically takes precedence
// — see the ThresholdCallback contract.
func (me *measurement) fireCallbacks() {
	m := me.m
	if m.onUpper == nil && m.onLower == nil {
		return
	}
	ratio := me.raw
	info := CallbackInfo{
		Now:        m.env.Now(),
		ErrorRatio: ratio,
		RawRatio:   me.raw,
		Smoothed:   me.smoothed(),
		RateBps:    me.lastRate,
		SRTT:       m.rtt.SRTT(),
		Cwnd:       m.cc.Window(),
	}
	// An upper threshold of zero normally means "not registered" (a ratio
	// is always ≥ 0); the equal-thresholds escape keeps the upper-first
	// precedence even for a misconfigured upper == lower == 0 pair.
	upperHit := m.onUpper != nil && ratio >= m.upperThresh &&
		(m.upperThresh > 0 || m.upperThresh == m.lowerThresh)
	switch {
	case upperHit:
		rep := m.onUpper(info)
		me.traceCallback(trace.ReasonUpper, rep)
		if rep != nil {
			m.coo.onReport(rep, info)
		}
	case m.onLower != nil && ratio <= m.lowerThresh:
		rep := m.onLower(info)
		me.traceCallback(trace.ReasonLower, rep)
		if rep != nil {
			m.coo.onReport(rep, info)
		}
	}
}

// traceCallback records a threshold-callback invocation and the adaptation
// it returned.
func (me *measurement) traceCallback(which string, rep *AdaptationReport) {
	m := me.m
	if m.tr == nil {
		return
	}
	ev := trace.Event{
		Time: m.env.Now(), Type: trace.ThresholdCallbackFired, ConnID: m.connID,
		RawRatio: me.raw, ErrorRatio: me.smoothed(), Reason: which, Kind: trace.KindNone,
	}
	if rep != nil {
		ev.Kind = rep.Kind.String()
		ev.Degree = rep.Degree
		ev.WhenFrames = rep.WhenFrames
	}
	m.tr.Trace(ev)
}
