// Package core implements the IQ-RUDP protocol machine: a connection-
// oriented, datagram-based reliable UDP transport with window-based
// congestion control resembling Loss-Delay Adjustment (LDA), adaptive
// reliability (sender packet marking and receiver loss tolerance), exported
// network performance metrics, application-registered threshold callbacks,
// and — the paper's contribution — coordination of transport-level
// adaptation with application-level adaptation via quality attributes.
//
// The machine is sans-I/O: it consumes decoded packets and timer
// expirations, and produces outputs through an injected Env. The same
// machine runs under the deterministic simulator (internal/netem) and over
// real UDP sockets (internal/udpwire).
package core

import (
	"fmt"
	"math"
	"time"

	"github.com/cercs/iqrudp/internal/fec"
	"github.com/cercs/iqrudp/internal/guard"
	"github.com/cercs/iqrudp/internal/trace"
)

// Config parameterises a Machine. The zero value is not valid; start from
// DefaultConfig.
type Config struct {
	// MSS is the maximum DATA payload per packet in bytes (paper: 1400).
	MSS int

	// InitialCwnd is the initial congestion window in packets.
	InitialCwnd float64

	// MaxCwnd caps the congestion window in packets.
	MaxCwnd float64

	// RecvWindow is the advertised receive window in packets.
	RecvWindow uint16

	// MeasurementPeriod is the interval over which the error ratio is
	// computed and callbacks/metrics are refreshed.
	MeasurementPeriod time.Duration

	// LossRatioAlpha is the EWMA weight for smoothing the per-period error
	// ratio.
	LossRatioAlpha float64

	// LossTolerance is this endpoint's tolerance, as a receiver, for lost
	// unmarked traffic: the fraction of all application messages it can
	// tolerate not receiving. Advertised to the peer during the handshake.
	LossTolerance float64

	// Coordinate enables the IQ-RUDP coordination schemes. With it false the
	// machine behaves as plain RUDP: application adaptation reports are
	// accepted but ignored by the transport.
	Coordinate bool

	// DisableCC freezes the congestion window at FixedWindow packets
	// (used by the paper's "application adaptation only" configuration,
	// which disables the adaptive congestion window algorithm but keeps
	// providing performance metrics).
	DisableCC bool

	// FixedWindow is the frozen window size in packets when DisableCC is
	// set; 0 selects a bandwidth-delay-product-ish 54 packets.
	FixedWindow float64

	// HalvingDecrease switches the congestion controller's multiplicative
	// decrease from the LDA-like loss-proportional factor to TCP-style
	// halving (ablation).
	HalvingDecrease bool

	// RTOMin and RTOMax bound the retransmission timeout.
	RTOMin, RTOMax time.Duration

	// ConnID identifies the connection on the wire; 0 lets the machine pick.
	ConnID uint32

	// InitialSeq overrides the initial sequence number (0 = default 1).
	// Primarily for tests exercising sequence-space wraparound.
	InitialSeq uint32

	// Paced spreads transmissions over the round-trip time (one packet every
	// srtt/cwnd) instead of sending window bursts back to back. Pacing
	// trades a little latency for markedly smoother queue occupancy — the
	// traffic-smoothness theme of the paper, available as an ablation.
	Paced bool

	// Keepalive, when positive, sends a NUL probe after that much send-side
	// idle time (the RUDP draft's keepalive). Probes elicit acknowledgements,
	// so they also feed DeadInterval.
	Keepalive time.Duration

	// DeadInterval, when positive, aborts the connection after hearing
	// nothing from the peer for that long. Combine with Keepalive shorter
	// than DeadInterval so an idle-but-healthy peer stays provably alive.
	DeadInterval time.Duration

	// MaxSendBacklog, when positive, bounds the segmented-but-untransmitted
	// send queue in packets. At the bound the machine degrades gracefully
	// instead of growing without limit: unmarked messages are discarded at
	// ingress, and queued unmarked packets are abandoned (forward-seq) to
	// make room for marked ones — the Case-1 discard rule applied to local
	// overload, gated by the receiver's loss tolerance like every skip.
	// Zero means unbounded (the historical behavior).
	MaxSendBacklog int

	// FECGroup, when positive, enables forward-erasure repair (internal/fec)
	// and is this endpoint's declared decode preference: the largest repair
	// group size K (data packets per repair packet) it is willing to track as
	// a receiver, advertised to the peer during the handshake via the
	// FEC_GROUP attribute. As a sender the machine emits repair packets only
	// when the peer advertised a positive value, starting at the peer's K and
	// adapting downward as measured loss grows. Zero disables FEC entirely
	// (no advertisement, arriving REPAIR packets ignored). Values are clamped
	// to [2, fec.GroupMax] on the wire.
	FECGroup int

	// ResumeToken, when non-empty, is carried as the SYN payload: a resuming
	// dialer names its dead predecessor connection so the server can evict
	// it (built with packet.AppendResumeToken; see Conn.Resume in udpwire).
	ResumeToken []byte

	// Tracer, when non-nil, receives a structured event at every machine
	// decision point (see the internal/trace package for the taxonomy and
	// sinks). Nil disables tracing at zero cost: no event is constructed.
	// The machine invokes the tracer synchronously from its driving
	// context; implementations must be fast and safe for concurrent use
	// when one sink is shared across connections.
	Tracer trace.Tracer

	// Hists, when non-nil, receives distribution samples (RTT, delivery
	// latency, ack delay, send-backlog depth) at the machine's measurement
	// points. Build it with NewHists. Recording is lock-free and
	// allocation-free, so one Hists may be shared across connections for
	// fleet-wide aggregation or kept per-connection for flight-record
	// summaries. Nil disables at the cost of one untaken branch per point.
	Hists *Hists

	// FlightEvents, when positive, keeps an always-on ring of that many
	// most-recent trace events per connection (in addition to Tracer, which
	// may be nil). On abnormal close the ring, the final Metrics and the
	// histogram summaries are snapshotted into a FlightRecord — the
	// connection's black box, retrievable via Machine.FlightRecord. Zero
	// disables the recorder.
	FlightEvents int

	// Pressure, when non-nil, samples the driver's global brownout level
	// (0 = none; see guard.Governor). The machine consults it on elastic-
	// memory decision points: at level ≥ 1 unmarked ingress is shed (within
	// the receiver's loss tolerance, exactly like MaxSendBacklog overload),
	// and at level ≥ 2 the advertised receive window is clamped. The
	// function must be safe to call from the machine's driving context and
	// cheap (an atomic load and a few compares). Nil disables both hooks.
	Pressure func() int

	// Mem, when non-nil, is a shared byte ledger the machine charges for its
	// elastic buffers — send backlog, out-of-order buffer, reassembly — so a
	// serving engine can bound aggregate memory across thousands of
	// connections (see guard.Ledger and the serve engine's governor). Nil
	// disables accounting at zero cost.
	Mem *guard.Ledger
}

// DefaultConfig returns the paper's standard transport parameters.
func DefaultConfig() Config {
	return Config{
		MSS:               1400,
		InitialCwnd:       2,
		MaxCwnd:           1024,
		RecvWindow:        512,
		MeasurementPeriod: 500 * time.Millisecond,
		LossRatioAlpha:    0.5,
		LossTolerance:     0,
		Coordinate:        true,
		RTOMin:            200 * time.Millisecond,
		RTOMax:            10 * time.Second,
	}
}

// sanitize fills defaults for unset fields.
func (c *Config) sanitize() {
	if c.MSS <= 0 {
		c.MSS = 1400
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 2
	}
	if c.MaxCwnd <= 0 {
		c.MaxCwnd = 1024
	}
	if c.RecvWindow == 0 {
		c.RecvWindow = 512
	}
	if c.MeasurementPeriod <= 0 {
		c.MeasurementPeriod = 500 * time.Millisecond
	}
	if c.LossRatioAlpha <= 0 || c.LossRatioAlpha > 1 {
		c.LossRatioAlpha = 0.5
	}
	if c.RTOMin <= 0 {
		c.RTOMin = 200 * time.Millisecond
	}
	if c.RTOMax <= 0 {
		c.RTOMax = 10 * time.Second
	}
	if c.DisableCC && c.FixedWindow <= 0 {
		c.FixedWindow = 54
	}
	if c.FECGroup < 0 {
		c.FECGroup = 0
	}
	if c.FECGroup > fec.GroupMax {
		c.FECGroup = fec.GroupMax
	}
}

// AdaptKind classifies an application adaptation for the transport.
type AdaptKind uint8

// Application adaptation kinds (paper §2.3.2).
const (
	// AdaptNone reports no adaptation.
	AdaptNone AdaptKind = iota
	// AdaptFrequency: same message size, lower frequency. No window change.
	AdaptFrequency
	// AdaptResolution: smaller messages at the same frequency. The
	// coordinated transport grows its packet window by 1/(1−Degree) while
	// frames are below the MSS.
	AdaptResolution
	// AdaptReliability: the application unmarks a fraction of its traffic.
	// The coordinated transport discards unmarked messages before they reach
	// the network, within the receiver's loss tolerance.
	AdaptReliability
)

// String names the kind.
func (k AdaptKind) String() string {
	switch k {
	case AdaptNone:
		return "none"
	case AdaptFrequency:
		return "frequency"
	case AdaptResolution:
		return "resolution"
	case AdaptReliability:
		return "reliability"
	default:
		return "invalid"
	}
}

// AdaptationReport describes an application-level adaptation to the
// transport. It is the structured form of the ADAPT_* attribute set: a
// callback may return one, or the application passes the equivalent
// attributes on a SendMsg call.
type AdaptationReport struct {
	Kind AdaptKind

	// Degree quantifies the adaptation: for resolution, the frame-size
	// reduction rate_chg in [0,1) (negative for increases); for reliability,
	// the unmark probability in [0,1]; for frequency, the frequency factor.
	Degree float64

	// WhenFrames is the number of application frames until the adaptation
	// takes effect: 0 means immediately, >0 means delayed (ADAPT_WHEN), and
	// −1 means the application will not adapt.
	WhenFrames int

	// CondErrorRatio is the error ratio the application based this
	// adaptation on (ADAPT_COND); NaN when not supplied.
	CondErrorRatio float64

	// FrameSize is the application's frame size in bytes after the
	// adaptation, used for the below-MSS window-growth condition. 0 means
	// unknown (treated as below MSS).
	FrameSize int
}

// NoAdaptation is the report meaning "the application will not adapt".
func NoAdaptation() *AdaptationReport {
	return &AdaptationReport{Kind: AdaptNone, WhenFrames: -1, CondErrorRatio: math.NaN()}
}

// CallbackInfo is the network state snapshot passed to threshold callbacks.
type CallbackInfo struct {
	Now        time.Duration // virtual time of the callback
	ErrorRatio float64       // per-period error ratio that crossed the threshold
	RawRatio   float64       // same as ErrorRatio (kept for clarity at call sites)
	Smoothed   float64       // EWMA-smoothed ratio (what the controller uses)
	RateBps    float64       // delivery rate estimate, bytes/s
	SRTT       time.Duration // smoothed round-trip time
	Cwnd       float64       // current congestion window, packets
}

// ThresholdCallback is invoked when the measured error ratio crosses a
// registered threshold. The return value describes the application's
// adaptation (nil means none). With coordination enabled the transport
// re-adapts accordingly (paper §2.3).
//
// At most one callback fires per measurement period. When a period
// satisfies both registered thresholds — possible with misconfigured
// thresholds, e.g. upper == lower — the upper callback deterministically
// takes precedence and the lower callback is not invoked for that period.
type ThresholdCallback func(info CallbackInfo) *AdaptationReport

// Metrics is a snapshot of the transport's internal measurements, the
// queryable network performance metrics of paper §2.1.
type Metrics struct {
	SRTT       time.Duration
	RTTVar     time.Duration
	ErrorRatio float64 // smoothed
	RawRatio   float64 // last period, unsmoothed
	RateBps    float64 // acked bytes/s over the last period
	Cwnd       float64 // packets
	InFlight   int

	SentPackets    uint64 // DATA transmissions, including retransmissions
	Retransmits    uint64
	SkippedPackets uint64 // abandoned unmarked packets (forward-seq)
	SenderDiscards uint64 // unmarked messages discarded before sending (Case 1)
	DeadlineDrops  uint64 // unmarked packets abandoned after their deadline
	AckedPackets   uint64
	DeliveredMsgs  uint64 // messages delivered to the local application
	PartialMsgs    uint64 // delivered with missing fragments
	LostMsgs       uint64 // messages skipped entirely
	AckedBytes     uint64
	WindowRescales uint64 // coordination window adjustments (Cases 2/3)
	TxErrors       uint64 // socket-level transmit failures reported by the driver
	ShedMsgs       uint64 // messages lost to backlog shedding (MaxSendBacklog)
	ShedPackets    uint64 // queued packets abandoned by backlog shedding
	ShedBytes      uint64 // payload bytes shed under local overload

	FecRepairsSent     uint64 // REPAIR packets emitted (sender side)
	FecRepairsRecv     uint64 // REPAIR packets handled (receiver side)
	FecRecovered       uint64 // data packets reconstructed from repair groups
	FecRecoveredMarked uint64 // recovered packets that were marked (a retransmit the ack race can now cancel)
	EackClips          uint64 // acks whose EACK extent list hit the per-ack cap
}

// String formats the snapshot as a one-line summary, the form used by
// cmd/iqload's final report.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"srtt=%v rttvar=%v cwnd=%.1f inflight=%d loss=%.2f%% raw=%.2f%% rate=%.1fKB/s "+
			"sent=%d rtx=%d acked=%d skipped=%d discarded=%d deadline=%d "+
			"delivered=%d partial=%d lost=%d ackedKB=%.1f rescales=%d txerr=%d "+
			"shed=%d/%dpkt/%.1fKB fec=%d/%d/%d(%dm) eackclip=%d",
		m.SRTT.Round(time.Microsecond), m.RTTVar.Round(time.Microsecond),
		m.Cwnd, m.InFlight, m.ErrorRatio*100, m.RawRatio*100, m.RateBps/1000,
		m.SentPackets, m.Retransmits, m.AckedPackets, m.SkippedPackets,
		m.SenderDiscards, m.DeadlineDrops,
		m.DeliveredMsgs, m.PartialMsgs, m.LostMsgs,
		float64(m.AckedBytes)/1000, m.WindowRescales, m.TxErrors,
		m.ShedMsgs, m.ShedPackets, float64(m.ShedBytes)/1000,
		m.FecRepairsSent, m.FecRepairsRecv, m.FecRecovered, m.FecRecoveredMarked,
		m.EackClips)
}
