package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/endpoint"
	"github.com/cercs/iqrudp/internal/tcpsim"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Table2Spec parameterises the fairness test (§3.2, Table 2): a bulk
// transfer over TCP or IQ-RUDP competing against one long-lived TCP flow on
// the shared bottleneck. Fair behaviour is both transports achieving a
// similar share, with TCP somewhat ahead.
type Table2Spec struct {
	Seed     int64
	Messages int // bulk workload: fixed-size messages
	MsgSize  int
}

// DefaultTable2 returns the calibrated defaults (≈42 MB transfer).
func DefaultTable2() Table2Spec {
	return Table2Spec{Seed: 2, Messages: 30000, MsgSize: 1400}
}

// Table2 runs the two rows: the application flow over TCP, then over
// IQ-RUDP, each against a persistent competing TCP flow.
func Table2(spec Table2Spec) []Result {
	var out []Result
	for _, row := range []struct {
		name   string
		scheme Scheme
	}{
		{"TCP", SchemeTCP},
		{"IQ-RUDP", SchemeIQRUDP},
	} {
		r := newRig(rigOpts{seed: spec.Seed, dumbbell: bottleneck20(), scheme: row.scheme})

		// Competing long-lived TCP flow on its own host pair.
		mkTCP := func(env core.Env) endpoint.Transport {
			return tcpsim.NewMachine(tcpsim.DefaultConfig(), env)
		}
		cSnd, cRcv := endpoint.PairTransport(r.d, mkTCP, mkTCP)
		endpoint.WaitEstablished(r.s, cSnd, cRcv, 10*time.Second)
		crossBulk := &traffic.BulkSource{
			S: r.s, T: cSnd.T, Total: 1 << 30,
			SizeOf: func(int) int { return 1400 },
		}
		crossBulk.Start()

		app := &traffic.BulkSource{
			S: r.s, T: r.snd.T, Total: spec.Messages,
			SizeOf: func(int) int { return spec.MsgSize },
		}
		app.Start()
		r.runToCompletion(app.Done, 3*time.Second, 1800*time.Second)
		out = append(out, r.col.result(row.name, spec.Messages))
	}
	return out
}
