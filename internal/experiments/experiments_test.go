package experiments

import (
	"strings"
	"testing"
	"time"
)

// The experiment tests assert the paper's qualitative shapes (who wins,
// roughly by how much), not absolute numbers: the substrate is a simulator,
// not the authors' Emulab testbed. Scaled-down specs keep the suite fast;
// cmd/iqbench runs the full calibrated versions.

func scaled1() Table1Spec {
	s := DefaultTable1()
	s.Frames = 3000
	s.Runs = 2
	return s
}

func TestTable1Shapes(t *testing.T) {
	rows := Table1(scaled1())
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]Result{}
	for _, r := range rows {
		byName[r.Name] = r
		if r.MsgsRecvdPct < 99.9 {
			t.Errorf("%s delivered %.1f%%, want 100%% (all marked)", r.Name, r.MsgsRecvdPct)
		}
	}
	tcp, iq := byName["TCP"], byName["IQ-RUDP"]
	appOnly, iqApp := byName["App adaptation only"], byName["IQ-RUDP w/ app adaptation"]

	// Adaptation shortens the run substantially (paper: ≈2×).
	if !(iqApp.DurationSec < 0.85*tcp.DurationSec) {
		t.Errorf("adapted run %.1fs not much faster than TCP %.1fs", iqApp.DurationSec, tcp.DurationSec)
	}
	// IQ-RUDP is at least TCP-competitive in throughput.
	if iq.ThroughputKBs < 0.9*tcp.ThroughputKBs {
		t.Errorf("IQ-RUDP %.1f KB/s far below TCP %.1f", iq.ThroughputKBs, tcp.ThroughputKBs)
	}
	// Coordination recovers throughput over app-adaptation-only (the ~8% →
	// ~2% gap story); allow a small noise band on the scaled-down workload.
	if iqApp.ThroughputKBs < 0.95*appOnly.ThroughputKBs {
		t.Errorf("coordinated %.1f KB/s below app-only %.1f", iqApp.ThroughputKBs, appOnly.ThroughputKBs)
	}
	// IQ-RUDP delivers better (lower) inter-arrival delay than TCP.
	if iq.InterArrival > tcp.InterArrival {
		t.Errorf("IQ-RUDP inter-arrival %.4f above TCP %.4f", iq.InterArrival, tcp.InterArrival)
	}
}

func TestTable2Fairness(t *testing.T) {
	spec := DefaultTable2()
	spec.Messages = 8000
	rows := Table2(spec)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tcp, iq := rows[0], rows[1]
	// Fairness: both transports get a similar share against a TCP
	// competitor — within 25% of each other and both a sane share of the
	// 20 Mb/s link (fair share 1.25 MB/s).
	ratio := iq.ThroughputKBs / tcp.ThroughputKBs
	if ratio < 0.75 || ratio > 1.35 {
		t.Errorf("throughput ratio IQ/TCP = %.2f, want ≈1 (fairness)", ratio)
	}
	for _, r := range rows {
		if r.ThroughputKBs < 600 || r.ThroughputKBs > 1900 {
			t.Errorf("%s throughput %.0f KB/s implausible for a fair share", r.Name, r.ThroughputKBs)
		}
	}
}

func TestTable3ConflictShapes(t *testing.T) {
	spec := DefaultTable3()
	spec.Frames = 4000
	spec.Runs = 2
	rows := Table3(spec)
	iq, ru := rows[0], rows[1]
	// Coordination shortens the run.
	if iq.DurationSec >= ru.DurationSec {
		t.Errorf("IQ-RUDP %.1fs not faster than RUDP %.1fs", iq.DurationSec, ru.DurationSec)
	}
	// Fewer messages delivered, but within the 40% tolerance.
	if iq.MsgsRecvdPct >= ru.MsgsRecvdPct {
		t.Errorf("IQ-RUDP delivered %.1f%% ≥ RUDP %.1f%%", iq.MsgsRecvdPct, ru.MsgsRecvdPct)
	}
	if iq.MsgsRecvdPct < 60-1e-9 {
		t.Errorf("IQ-RUDP delivered %.1f%%, breaching the 40%% tolerance", iq.MsgsRecvdPct)
	}
	// Tagged traffic sees better delay with coordination.
	if iq.TaggedDelayMs >= ru.TaggedDelayMs {
		t.Errorf("tagged delay IQ %.2fms ≥ RUDP %.2fms", iq.TaggedDelayMs, ru.TaggedDelayMs)
	}
}

func TestFig23SeriesProduced(t *testing.T) {
	spec := DefaultTable3()
	spec.Frames = 2000
	spec.Runs = 1
	iq, ru := Fig23(spec)
	if len(iq.JitterSeries) == 0 || len(ru.JitterSeries) == 0 {
		t.Fatalf("series lengths %d/%d", len(iq.JitterSeries), len(ru.JitterSeries))
	}
}

func TestTable4ConflictNetShapes(t *testing.T) {
	spec := DefaultTable4()
	spec.Messages = 5000
	spec.Runs = 2
	rows := Table4(spec)
	iq, ru := rows[0], rows[1]
	if iq.DurationSec >= ru.DurationSec {
		t.Errorf("IQ-RUDP %.1fs not faster than RUDP %.1fs", iq.DurationSec, ru.DurationSec)
	}
	if iq.MsgsRecvdPct >= ru.MsgsRecvdPct {
		t.Errorf("IQ-RUDP delivered %.1f%% ≥ RUDP %.1f%%", iq.MsgsRecvdPct, ru.MsgsRecvdPct)
	}
	if iq.MsgsRecvdPct < 60-1e-9 {
		t.Errorf("IQ-RUDP delivered %.1f%%, breaching tolerance", iq.MsgsRecvdPct)
	}
}

func TestTable6OverreactionNonInferiority(t *testing.T) {
	// The honest reproduction finding (EXPERIMENTS.md): the over-reaction
	// coordination has no measurable mean effect in this substrate — per-seed
	// spreads reach ±27% — so the assertion is non-inferiority of the mean at
	// the heaviest congestion, not the paper's single-run +25%.
	spec := DefaultTable6()
	spec.CrossRates = []float64{18e6}
	spec.Runs = 6
	rows := Table6FixedHorizon(spec)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	iq18, ru18 := rows[0].Result, rows[1].Result
	if iq18.ThroughputKBs < 0.85*ru18.ThroughputKBs {
		t.Errorf("18Mb: IQ %.1f KB/s materially below RUDP %.1f (seed-averaged)",
			iq18.ThroughputKBs, ru18.ThroughputKBs)
	}
	if iq18.ThroughputKBs <= 0 || ru18.ThroughputKBs <= 0 {
		t.Error("degenerate throughputs")
	}
}

func TestTable7RunsAndStaysClose(t *testing.T) {
	spec := DefaultTable7()
	spec.Frames = 3000
	spec.Runs = 1
	rows := Table7(spec)
	iq, ru := rows[0], rows[1]
	// The paper reports only small differences here (short RTT); assert the
	// runs are sane and IQ is not materially worse.
	if iq.ThroughputKBs < 0.9*ru.ThroughputKBs {
		t.Errorf("IQ %.1f KB/s materially below RUDP %.1f", iq.ThroughputKBs, ru.ThroughputKBs)
	}
	if iq.MsgsRecvdPct < 99 || ru.MsgsRecvdPct < 99 {
		t.Errorf("deliveries incomplete: %.1f%% / %.1f%%", iq.MsgsRecvdPct, ru.MsgsRecvdPct)
	}
}

func TestTable8CondOrdering(t *testing.T) {
	spec := DefaultTable8()
	spec.Frames = 1500
	spec.Runs = 2
	rows := Table8(spec)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	withCond, withoutCond := rows[0], rows[1]
	// ADAPT_COND must not hurt: the corrected scheme stays at least on par
	// with the uncorrected one (the paper's ordering, loosely).
	if withCond.ThroughputKBs < 0.85*withoutCond.ThroughputKBs {
		t.Errorf("w/ COND %.1f KB/s far below w/o COND %.1f",
			withCond.ThroughputKBs, withoutCond.ThroughputKBs)
	}
}

func TestFig1TraceTable(t *testing.T) {
	tr, tb := Fig1()
	if len(tr) == 0 {
		t.Fatal("empty trace")
	}
	if !strings.Contains(tb.String(), "Figure 1") {
		t.Fatal("missing title")
	}
}

func TestRegistryCoversAllExperiments(t *testing.T) {
	want := []string{"fig1", "table1", "table2", "table3", "fig23", "table4",
		"table5", "table6", "fig4", "table7", "table8"}
	got := All()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(got), len(want))
	}
	for i, id := range want {
		if got[i].ID != id {
			t.Errorf("registry[%d] = %s, want %s", i, got[i].ID, id)
		}
	}
	if _, err := ByID("table3"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id must error")
	}
}

func TestMeanResultsAverages(t *testing.T) {
	n := 0
	r := meanResults("x", []int64{1, 2}, func(seed int64) Result {
		n++
		return Result{DurationSec: float64(seed), ThroughputKBs: 10 * float64(seed), DeliveredMsgs: int(seed)}
	})
	if n != 2 {
		t.Fatalf("ran %d times", n)
	}
	if r.DurationSec != 1.5 || r.ThroughputKBs != 15 {
		t.Fatalf("averages wrong: %+v", r)
	}
	if r.Name != "x" {
		t.Fatalf("name = %q", r.Name)
	}
}

func TestSeedsFromDistinct(t *testing.T) {
	s := seedsFrom(7, 5)
	seen := map[int64]bool{}
	for _, v := range s {
		if seen[v] {
			t.Fatal("duplicate seed")
		}
		seen[v] = true
	}
}

func TestSchemeStrings(t *testing.T) {
	if SchemeTCP.String() != "TCP" || SchemeIQRUDP.String() != "IQ-RUDP" ||
		SchemeRUDP.String() != "RUDP" || SchemeAppOnly.String() != "App adaptation only" {
		t.Fatal("scheme names wrong")
	}
}

func TestAblationDecreaseRuns(t *testing.T) {
	rows := AblationDecrease(201, 1, 2000)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lda, halving := rows[0], rows[1]
	// Both complete the workload; the smoother decrease must not lose
	// materially to halving (that is its reason to exist).
	if lda.ThroughputKBs < 0.9*halving.ThroughputKBs {
		t.Errorf("LDA-style %.1f KB/s far below halving %.1f", lda.ThroughputKBs, halving.ThroughputKBs)
	}
	if lda.MsgsRecvdPct < 99.9 || halving.MsgsRecvdPct < 99.9 {
		t.Error("ablation runs incomplete")
	}
}

func TestAblationQueueREDHelps(t *testing.T) {
	rows := AblationQueue(202, 1, 2000)
	droptail, red := rows[0], rows[1]
	// RED keeps the standing queue short: delay must improve.
	if red.DelayMs >= droptail.DelayMs {
		t.Errorf("RED delay %.2fms not below drop-tail %.2fms", red.DelayMs, droptail.DelayMs)
	}
}

func TestAblationPeriodSweepRuns(t *testing.T) {
	rows := AblationPeriod(203, 1, 1500)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.DeliveredMsgs == 0 {
			t.Errorf("period %s delivered nothing", r.Name)
		}
	}
}

func TestAblationRegistry(t *testing.T) {
	if len(AllWithAblations()) != len(All())+5 { // 4 ablations + multiplex
		t.Fatal("ablations/extensions missing from registry")
	}
	if _, err := ByID("ablation-queue"); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplexFairness(t *testing.T) {
	spec := DefaultMultiplex()
	spec.FlowsPer = 2
	spec.Interval = 15 * time.Second
	res := Multiplex(spec)
	if len(res.PerFlowKBs) != 4 {
		t.Fatalf("flows = %d", len(res.PerFlowKBs))
	}
	// The link must be near-fully used (2.5 MB/s = 2500 KB/s capacity).
	total := res.IQAggKBs + res.TCPAggKBs
	if total < 1800 {
		t.Fatalf("aggregate %v KB/s leaves the link badly underused", total)
	}
	if res.Jain <= 0.5 || res.Jain > 1.0 {
		t.Fatalf("Jain index %v out of plausible range", res.Jain)
	}
	// Halving brings the classes closer together.
	spec.Halving = true
	resH := Multiplex(spec)
	iqShare := res.IQAggKBs / total
	iqShareH := resH.IQAggKBs / (resH.IQAggKBs + resH.TCPAggKBs)
	if !(iqShareH < iqShare) {
		t.Errorf("halving did not reduce IQ-RUDP's share: %.2f → %.2f", iqShare, iqShareH)
	}
}

func TestCompareTables(t *testing.T) {
	// Compare must produce a populated table for the cheap experiments and
	// reject unknown ids. (table2 runs quickly.)
	tb, err := Compare("table2")
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	if !strings.Contains(out, "TCP") || !strings.Contains(out, "IQ-RUDP") {
		t.Fatalf("comparison missing rows:\n%s", out)
	}
	if !strings.Contains(out, "x") {
		t.Fatal("comparison missing ratio cells")
	}
	if _, err := Compare("fig1"); err == nil {
		t.Fatal("figures have no numeric comparison")
	}
}

func TestAblationPacingRuns(t *testing.T) {
	rows := AblationPacing(204, 1, 1500)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.MsgsRecvdPct < 99.9 {
			t.Errorf("%s delivered %.1f%%", r.Name, r.MsgsRecvdPct)
		}
	}
}
