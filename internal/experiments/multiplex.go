package experiments

import (
	"fmt"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/endpoint"
	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/sim"
	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/tcpsim"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Multiplexed fairness (extension): the paper's Table 2 pits one IQ-RUDP
// flow against one TCP flow and notes that the observed throughput
// difference "should not be the case when there is a sufficient degree of
// multiplexing on the path". This experiment tests that prediction: N
// IQ-RUDP bulk flows and N TCP bulk flows share the standard bottleneck for
// a fixed interval; we report the aggregate rate of each class and the Jain
// fairness index over all 2N flows.
type MultiplexSpec struct {
	Seed     int64
	FlowsPer int           // flows per transport class
	Interval time.Duration // measurement interval
	MsgSize  int
	Halving  bool // run the IQ-RUDP flows with TCP-style halving (ablation)
}

// DefaultMultiplex returns the calibrated defaults (4 flows per class).
func DefaultMultiplex() MultiplexSpec {
	return MultiplexSpec{Seed: 301, FlowsPer: 4, Interval: 30 * time.Second, MsgSize: 1400}
}

// MultiplexResult summarises a multiplexing run.
type MultiplexResult struct {
	PerFlowKBs []float64 // IQ-RUDP flows first, then TCP flows
	IQAggKBs   float64
	TCPAggKBs  float64
	Jain       float64
}

// Multiplex runs the experiment.
func Multiplex(spec MultiplexSpec) MultiplexResult {
	if spec.FlowsPer <= 0 {
		spec.FlowsPer = 4
	}
	if spec.Interval <= 0 {
		spec.Interval = 30 * time.Second
	}
	s := sim.New(spec.Seed)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())

	type flow struct {
		rcvd  *uint64
		isTCP bool
	}
	var flows []flow
	addFlow := func(isTCP bool) {
		var mk func(env core.Env) endpoint.Transport
		if isTCP {
			mk = func(env core.Env) endpoint.Transport {
				return tcpsim.NewMachine(tcpsim.DefaultConfig(), env)
			}
		} else {
			mk = func(env core.Env) endpoint.Transport {
				cfg := core.DefaultConfig()
				cfg.HalvingDecrease = spec.Halving
				return core.NewMachine(cfg, env)
			}
		}
		snd, rcv := endpoint.PairTransport(d, mk, mk)
		var bytes uint64
		rcv.OnMessage = func(msg core.Message) { bytes += uint64(len(msg.Data)) }
		endpoint.WaitEstablished(s, snd, rcv, 10*time.Second)
		bulk := &traffic.BulkSource{
			S: s, T: snd.T, Total: 1 << 30,
			SizeOf: func(int) int { return spec.MsgSize },
		}
		bulk.Start()
		flows = append(flows, flow{rcvd: &bytes, isTCP: isTCP})
	}
	// Interleave the classes so neither gets a startup advantage.
	for i := 0; i < spec.FlowsPer; i++ {
		addFlow(false)
		addFlow(true)
	}

	// Warm up past slow start, then measure over the interval.
	warm := 5 * time.Second
	s.RunUntil(s.Now() + warm)
	var base []uint64
	for _, f := range flows {
		base = append(base, *f.rcvd)
	}
	s.RunUntil(s.Now() + spec.Interval)

	var res MultiplexResult
	secs := spec.Interval.Seconds()
	for i, f := range flows {
		kbs := float64(*f.rcvd-base[i]) / secs / 1000
		res.PerFlowKBs = append(res.PerFlowKBs, kbs)
		if f.isTCP {
			res.TCPAggKBs += kbs
		} else {
			res.IQAggKBs += kbs
		}
	}
	res.Jain = stats.JainIndex(res.PerFlowKBs)
	return res
}

// MultiplexExperiment is the registry entry.
func MultiplexExperiment() Experiment {
	return Experiment{
		ID:    "multiplex",
		Title: "Extension: fairness under multiplexing (N IQ-RUDP vs N TCP)",
		Run: func() []*stats.Table {
			spec := DefaultMultiplex()
			res := Multiplex(spec)
			spec.Halving = true
			resH := Multiplex(spec)
			tb := stats.NewTable(
				fmt.Sprintf("Fairness with %d flows per class sharing the 20 Mb/s bottleneck", spec.FlowsPer),
				"IQ-RUDP decrease rule", "IQ agg (KB/s)", "TCP agg (KB/s)", "Jain index")
			tb.AddRow("loss-proportional (default)", res.IQAggKBs, res.TCPAggKBs, res.Jain)
			tb.AddRow("halving (ablation)", resH.IQAggKBs, resH.TCPAggKBs, resH.Jain)
			return []*stats.Table{tb}
		},
	}
}
