package experiments

// Table7Spec parameterises the limited-granularity experiment with a
// changing application (§3.5, Table 7): the same resolution adaptation as
// Table 5, but the application can only enact it at frames whose index is
// divisible by the granularity (paper: 20), emulating large application-
// level data units. Rows: RUDP (transport adapts alone, callback returns
// void) vs IQ-RUDP without ADAPT_COND (ADAPT_WHEN announced; window change
// applied at the enacting CMwritev_attr call).
type Table7Spec struct {
	Seed        int64
	Frames      int
	FPS         float64
	Unit        int
	CrossBps    float64
	Upper       float64
	Lower       float64
	Granularity int
	Backlog     int
	Runs        int // seeds averaged per row (0 = 3)
}

// DefaultTable7 returns the calibrated defaults.
func DefaultTable7() Table7Spec {
	return Table7Spec{
		Seed:        7,
		Frames:      6000,
		FPS:         250,
		Unit:        500,
		CrossBps:    18e6,
		Upper:       0.08,
		Lower:       0.01,
		Granularity: 20,
		Backlog:     200,
		Runs:        3,
	}
}

// Table7 runs the two rows.
func Table7(spec Table7Spec) []Result {
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	trace := frameTrace(spec.Frames)
	var out []Result
	for _, row := range []struct {
		name   string
		scheme Scheme
	}{
		{"IQ-RUDP w/o ADAPT_COND", SchemeIQRUDP},
		{"RUDP", SchemeRUDP},
	} {
		row := row
		out = append(out, meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
			return runChangingApp(changingAppCfg{
				name:        row.name,
				scheme:      row.scheme,
				adapt:       true,
				seed:        seed,
				trace:       trace,
				frames:      spec.Frames,
				fps:         spec.FPS,
				unit:        spec.Unit,
				crossBps:    spec.CrossBps,
				upper:       spec.Upper,
				lower:       spec.Lower,
				backlog:     spec.Backlog,
				granularity: spec.Granularity,
			})
		}))
	}
	return out
}
