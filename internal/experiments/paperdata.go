package experiments

import (
	"fmt"

	"github.com/cercs/iqrudp/internal/stats"
)

// The paper's published values (HPDC 2002, §3), used for side-by-side
// comparison output. Units follow each table's headings; rows are keyed by
// the scheme names this package uses.

// paperTable1 — Table 1, "Basic performance comparison":
// time(s), throughput(KB/s), inter-arrival(s), jitter(s).
var paperTable1 = map[string][4]float64{
	"TCP":                       {313, 94.2, 0.239, 0.110},
	"IQ-RUDP":                   {298, 98.2, 0.201, 0.098},
	"App adaptation only":       {158, 90, 0.114, 0.008},
	"IQ-RUDP w/ app adaptation": {144, 95.6, 0.113, 0.058},
}

// paperTable2 — Table 2, "Fairness test": time(s), throughput(KB/s).
var paperTable2 = map[string][2]float64{
	"TCP":     {51, 118},
	"IQ-RUDP": {60, 99},
}

// paperTable3 — Table 3: duration(s), recvd(%), tagged delay(ms),
// tagged jitter, delay(ms), jitter.
var paperTable3 = map[string][6]float64{
	"IQ-RUDP": {60.0, 72, 58.4, 6.6, 56.4, 6.6},
	"RUDP":    {80.9, 91, 66.8, 9.1, 62.2, 7.9},
}

// paperTable4 — Table 4, same columns as Table 3.
var paperTable4 = map[string][6]float64{
	"IQ-RUDP": {23.9, 63, 30.2, 3.1, 29.6, 3.1},
	"RUDP":    {32.5, 87.4, 38.1, 4.3, 29.4, 3.8},
}

// paperTable5 — Table 5: throughput(KB/s), duration(s), delay(ms), jitter.
var paperTable5 = map[string][4]float64{
	"IQ-RUDP": {380, 39, 10.4, 0.78},
	"RUDP":    {367, 42, 15.2, 0.83},
}

// paperTable6 — Table 6 keyed by (rate, scheme): throughput(KB/s),
// duration(s), delay(ms), jitter.
var paperTable6 = map[string][4]float64{
	"12-IQ-RUDP": {506, 9.5, 3.8, 0.20},
	"12-RUDP":    {478, 10.9, 4.6, 0.25},
	"16-IQ-RUDP": {131, 26.1, 10.2, 6.4},
	"16-RUDP":    {109, 31.0, 12.4, 10.3},
	"18-IQ-RUDP": {99, 51, 14, 19},
	"18-RUDP":    {79, 85, 22, 80},
}

// paperTable7 — Table 7: duration(s), throughput(KB/s), delay(ms), jitter.
var paperTable7 = map[string][4]float64{
	"IQ-RUDP w/o ADAPT_COND": {140, 97, 0.097, 0.047},
	"RUDP":                   {144, 95.6, 0.113, 0.058},
}

// paperTable8 — Table 8: duration(s), throughput(KB/s), delay(ms), jitter.
var paperTable8 = map[string][4]float64{
	"IQ-RUDP w/ ADAPT_COND":  {22.1, 37.8, 6.5, 0.8},
	"IQ-RUDP w/o ADAPT_COND": {22.7, 33.8, 6.7, 1.1},
	"RUDP":                   {23.2, 32.0, 6.8, 1.3},
}

// ratioCell renders measured/paper as a ratio string, the honest unit-free
// comparison (absolute values are not comparable across substrates).
func ratioCell(measured, paper float64) string {
	if paper == 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", measured/paper)
}

// Compare runs the named table experiment and juxtaposes the paper's values
// with the measured ones per row, plus the measured/paper ratio per metric.
// Supported ids: table1..table8 (except figures, which have no numeric rows).
func Compare(id string) (*stats.Table, error) {
	switch id {
	case "table1":
		rows := Table1(DefaultTable1())
		return compareRows(id, rows,
			[]string{"Time(s)", "Throughput(KB/s)", "Inter-arrival(s)", "Jitter(s)"},
			func(name string) []float64 {
				v, ok := paperTable1[name]
				if !ok {
					return nil
				}
				return v[:]
			}), nil
	case "table2":
		rows := Table2(DefaultTable2())
		return compareRows(id, rows,
			[]string{"Time(s)", "Throughput(KB/s)"},
			func(name string) []float64 {
				v, ok := paperTable2[name]
				if !ok {
					return nil
				}
				return v[:]
			}), nil
	case "table3":
		rows := Table3(DefaultTable3())
		return compareRows(id, rows,
			[]string{"Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)", "Tagged Jitter(ms)", "Delay(ms)", "Jitter(ms)"},
			func(name string) []float64 {
				v, ok := paperTable3[name]
				if !ok {
					return nil
				}
				return v[:]
			}), nil
	case "table4":
		rows := Table4(DefaultTable4())
		return compareRows(id, rows,
			[]string{"Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)", "Tagged Jitter(ms)", "Delay(ms)", "Jitter(ms)"},
			func(name string) []float64 {
				v, ok := paperTable4[name]
				if !ok {
					return nil
				}
				return v[:]
			}), nil
	case "table5":
		rows := Table5(DefaultTable5())
		return compareRows(id, rows,
			[]string{"Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter(ms)"},
			func(name string) []float64 {
				v, ok := paperTable5[name]
				if !ok {
					return nil
				}
				return v[:]
			}), nil
	case "table6":
		t6 := Table6(DefaultTable6())
		tb := stats.NewTable("table6: paper vs measured (ratios are measured/paper)",
			"Cell", "Paper tput", "Measured tput", "Ratio", "Paper dur", "Measured dur", "Ratio")
		for _, row := range t6 {
			key := fmt.Sprintf("%.0f-%s", row.CrossBps/1e6, row.Name)
			p, ok := paperTable6[key]
			if !ok {
				continue
			}
			tb.AddRow(key, p[0], row.ThroughputKBs, ratioCell(row.ThroughputKBs, p[0]),
				p[1], row.DurationSec, ratioCell(row.DurationSec, p[1]))
		}
		return tb, nil
	case "table7":
		rows := Table7(DefaultTable7())
		return compareRows(id, rows,
			[]string{"Duration(s)", "Throughput(KB/s)"},
			func(name string) []float64 {
				v, ok := paperTable7[name]
				if !ok {
					return nil
				}
				return v[:2]
			}), nil
	case "table8":
		rows := Table8(DefaultTable8())
		return compareRows(id, rows,
			[]string{"Duration(s)", "Throughput(KB/s)"},
			func(name string) []float64 {
				v, ok := paperTable8[name]
				if !ok {
					return nil
				}
				return v[:2]
			}), nil
	default:
		return nil, fmt.Errorf("experiments: no paper data for %q", id)
	}
}

// compareRows builds the side-by-side table for named metrics.
func compareRows(id string, rows []Result, cols []string, paper func(name string) []float64) *stats.Table {
	headers := []string{"Scheme"}
	for _, c := range cols {
		headers = append(headers, "Paper "+c, "Measured", "Ratio")
	}
	tb := stats.NewTable(id+": paper vs measured (ratios are measured/paper)", headers...)
	for _, r := range rows {
		p := paper(r.Name)
		if p == nil {
			continue
		}
		cells := []any{r.Name}
		for i, c := range cols {
			m := metric(r, c)
			pv := 0.0
			if i < len(p) {
				pv = p[i]
			}
			cells = append(cells, pv, m, ratioCell(m, pv))
		}
		tb.AddRow(cells...)
	}
	return tb
}
