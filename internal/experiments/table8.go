package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Table8Spec parameterises the limited-granularity experiment with a
// changing network (§3.5, Table 8): a long path (125 ms one-way delay),
// 14 Mb/s CBR cross traffic plus the VBR source, and a rate-based
// application sending fixed-size frames at a fixed frame rate. The
// application adapts its frame size only at 20-frame boundaries. Rows:
//
//	RUDP                    — no coordination
//	IQ-RUDP w/o ADAPT_COND  — ADAPT_WHEN announced, window change at
//	                          enactment using possibly stale conditions
//	IQ-RUDP w/ ADAPT_COND   — enactment additionally carries the trigger-time
//	                          error ratio; the transport corrects the window
//	                          for the network change during the delay (Eq. 1)
type Table8Spec struct {
	Seed        int64
	Frames      int
	FPS         float64
	FrameSize   int
	CrossBps    float64
	VBRFps      float64
	VBRUnit     int
	Upper       float64
	Lower       float64
	Granularity int
	OneWayDelay time.Duration
	Backlog     int
	Runs        int // seeds averaged per row (0 = 3)
}

// DefaultTable8 returns the calibrated defaults.
func DefaultTable8() Table8Spec {
	return Table8Spec{
		Seed:        8,
		Frames:      3000,
		FPS:         60,
		FrameSize:   1200,
		CrossBps:    16e6,
		VBRFps:      500,
		VBRUnit:     500,
		Upper:       0.08,
		Lower:       0.01,
		Granularity: 60,
		OneWayDelay: 125 * time.Millisecond,
		Backlog:     200,
		Runs:        5,
	}
}

// Table8Row identifies a row by scheme and ADAPT_COND usage.
type Table8Row struct {
	UseCond bool
	Result
}

// Table8 runs the three rows.
func Table8(spec Table8Spec) []Result {
	rows := []struct {
		name    string
		scheme  Scheme
		useCond bool
	}{
		{"IQ-RUDP w/ ADAPT_COND", SchemeIQRUDP, true},
		{"IQ-RUDP w/o ADAPT_COND", SchemeIQRUDP, false},
		{"RUDP", SchemeRUDP, false},
	}
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var out []Result
	for _, row := range rows {
		row := row
		out = append(out, meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
			s2 := spec
			s2.Seed = seed
			return runGranularityNet(row.name, row.scheme, row.useCond, s2)
		}))
	}
	return out
}

// runGranularityNet executes one row on the long-delay path.
func runGranularityNet(name string, scheme Scheme, useCond bool, spec Table8Spec) Result {
	dcfg := netem.DefaultDumbbell()
	dcfg.Delay = spec.OneWayDelay
	r := newRig(rigOpts{seed: spec.Seed, dumbbell: dcfg, scheme: scheme})
	cbr := traffic.NewCBR(r.d, spec.CrossBps, 1000)
	cbr.Start()
	vbr := traffic.NewVBR(r.d, vbrTrace(), spec.VBRFps, spec.VBRUnit)
	vbr.Loop = true
	vbr.Start()

	fs := &traffic.FrameSource{
		S: r.s, T: r.snd.T,
		FPS:        spec.FPS,
		FrameSize:  spec.FrameSize,
		MaxFrames:  spec.Frames,
		MaxBacklog: spec.Backlog,
	}
	adaptor := &resolutionAdaptor{
		adjust:      fs.AdjustScale,
		frameSize:   func() int { return int(float64(spec.FrameSize) * fs.Scale) },
		granularity: spec.Granularity,
		useCond:     useCond,
		upper:       spec.Upper,
		lower:       spec.Lower,
		cooldown:    4 * time.Second,
	}
	if r.snd.Machine != nil {
		adaptor.install(r.snd.Machine)
		fs.AttrsFor = adaptor.attrsFor
	}
	fs.Start()
	r.runToCompletion(fs.Done, 5*time.Second, 1800*time.Second)
	return r.col.result(name, spec.Frames)
}
