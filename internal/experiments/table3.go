package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/traffic"
)

// Table3Spec parameterises the conflicting-interests experiment (§3.3,
// Table 3 and Figures 2–3): a remote visualization marks every tagEvery-th
// message as control information and, when the error ratio exceeds the upper
// threshold, unmarks raw-data messages with probability max(0.40,
// 1.25·eratio). The receiver tolerates 40% loss. With coordination
// (IQ-RUDP), the transport discards unmarked messages before they reach the
// network; without it (RUDP), everything is sent and unmarked packets are
// only abandoned at retransmission time.
type Table3Spec struct {
	Seed      int64
	Frames    int
	FPS       float64
	Unit      int
	CrossBps  float64 // paper: 10 Mb/s iperf
	Upper     float64
	Lower     float64
	Tolerance float64
	TagEvery  int
	Backlog   int
	Runs      int // seeds averaged per row (0 = 3)
}

// DefaultTable3 returns the calibrated defaults.
func DefaultTable3() Table3Spec {
	return Table3Spec{
		Seed:      3,
		Frames:    6000,
		FPS:       120,
		Unit:      1000,
		CrossBps:  18e6,
		Upper:     0.08,
		Lower:     0.01,
		Tolerance: 0.40,
		TagEvery:  5,
		Backlog:   200,
		Runs:      3,
	}
}

// Table3 runs the two rows (IQ-RUDP coordinated, RUDP uncoordinated) and
// also returns the per-arrival jitter series for Figures 2 and 3.
func Table3(spec Table3Spec) []Result {
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var out []Result
	for _, row := range []struct {
		name   string
		scheme Scheme
	}{
		{"IQ-RUDP", SchemeIQRUDP},
		{"RUDP", SchemeRUDP},
	} {
		row := row
		out = append(out, meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
			s2 := spec
			s2.Seed = seed
			return runConflictApp(row.name, row.scheme, s2)
		}))
	}
	return out
}

// runConflictApp executes one row of the changing-application conflict
// scenario.
func runConflictApp(name string, scheme Scheme, spec Table3Spec) Result {
	r := newRig(rigOpts{
		seed:       spec.Seed,
		dumbbell:   bottleneck20(),
		scheme:     scheme,
		tolerance:  spec.Tolerance,
		keepSeries: true,
	})
	cross := traffic.NewCBR(r.d, spec.CrossBps, 1000)
	cross.Start()

	adaptor := &markingAdaptor{
		rng:      r.s.Rand(),
		tagEvery: spec.TagEvery,
		upper:    spec.Upper,
		lower:    spec.Lower,
	}
	if r.snd.Machine != nil {
		adaptor.install(r.snd.Machine)
	}
	trace := frameTrace(spec.Frames)
	fs := &traffic.FrameSource{
		S: r.s, T: r.snd.T,
		FPS: spec.FPS, Unit: spec.Unit,
		Trace: trace, MaxFrames: spec.Frames,
		IndexByFrame: true,
		MaxBacklog:   spec.Backlog,
		MarkPolicy:   adaptor.markPolicy,
	}
	fs.Start()
	r.runToCompletion(fs.Done, 3*time.Second, 1800*time.Second)
	return r.col.result(name, nonZeroFrames(trace, spec.Frames))
}

// Fig23 returns the per-arrival jitter series of the two Table 3 runs:
// Figure 2 is the coordinated (IQ-RUDP) series, Figure 3 the uncoordinated
// (RUDP) one.
func Fig23(spec Table3Spec) (iq Result, rudp Result) {
	iq = runConflictApp("IQ-RUDP", SchemeIQRUDP, spec)
	rudp = runConflictApp("RUDP", SchemeRUDP, spec)
	return iq, rudp
}
