package experiments

import (
	"fmt"
	"sort"
	"strings"

	"github.com/cercs/iqrudp/internal/stats"
)

// PaperRow holds the paper's published values for one table row, for
// side-by-side reporting in EXPERIMENTS.md and iqbench output.
type PaperRow struct {
	Name   string
	Values map[string]float64 // metric name → paper value
}

// Experiment is a runnable, named reproduction of one table or figure.
type Experiment struct {
	ID    string // "table1" … "table8", "fig1", "fig23", "fig4"
	Title string
	Run   func() []*stats.Table
}

// resultTable renders rows with the standard columns.
func resultTable(title string, rows []Result, cols ...string) *stats.Table {
	tb := stats.NewTable(title, append([]string{"Scheme"}, cols...)...)
	for _, r := range rows {
		cells := []any{r.Name}
		for _, c := range cols {
			cells = append(cells, metric(r, c))
		}
		tb.AddRow(cells...)
	}
	return tb
}

// metric extracts a named metric from a result.
func metric(r Result, name string) float64 {
	switch name {
	case "Time(s)", "Duration(s)":
		return r.DurationSec
	case "Throughput(KB/s)":
		return r.ThroughputKBs
	case "Inter-arrival(s)":
		return r.InterArrival
	case "Jitter(s)":
		return r.Jitter
	case "Mesgs Recvd(%)":
		return r.MsgsRecvdPct
	case "Tagged Delay(ms)":
		return r.TaggedDelayMs
	case "Tagged Jitter(ms)":
		return r.TaggedJitterMs
	case "Delay(ms)":
		return r.DelayMs
	case "Jitter(ms)":
		return r.JitterMs
	default:
		return 0
	}
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "fig1", Title: "Figure 1: Membership dynamics", Run: func() []*stats.Table {
			tr, tb := Fig1()
			spark := stats.NewTable("Trace (first 60 samples, group size)", "t(s)", "group", "bar")
			for i, p := range tr {
				if i >= 60 {
					break
				}
				spark.AddRow(p.At.Seconds(), p.Group, strings.Repeat("#", p.Group))
			}
			return []*stats.Table{tb, spark}
		}},
		{ID: "table1", Title: "Table 1: Basic performance comparison", Run: func() []*stats.Table {
			rows := Table1(DefaultTable1())
			return []*stats.Table{resultTable(
				"Table 1: Basic performance comparison (changing app, 18Mb CBR cross)",
				rows, "Time(s)", "Throughput(KB/s)", "Inter-arrival(s)", "Jitter(s)")}
		}},
		{ID: "table2", Title: "Table 2: Fairness test", Run: func() []*stats.Table {
			rows := Table2(DefaultTable2())
			return []*stats.Table{resultTable(
				"Table 2: Fairness test (bulk transfer vs one competing TCP flow)",
				rows, "Time(s)", "Throughput(KB/s)", "Inter-arrival(s)", "Jitter(s)")}
		}},
		{ID: "table3", Title: "Table 3: Coordination against conflict — changing application", Run: func() []*stats.Table {
			rows := Table3(DefaultTable3())
			return []*stats.Table{resultTable(
				"Table 3: Conflict, changing application (marking adaptation, 40% tolerance)",
				rows, "Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)", "Tagged Jitter(ms)", "Delay(ms)", "Jitter(ms)")}
		}},
		{ID: "fig23", Title: "Figures 2–3: Delay jitter series", Run: func() []*stats.Table {
			spec := DefaultTable3()
			spec.Runs = 1
			iq, ru := Fig23(spec)
			tb := stats.NewTable("Figures 2–3: per-arrival jitter (seconds), summary of the series",
				"Scheme", "Arrivals", "Mean jitter", "Max jitter")
			out := []*stats.Table{tb}
			for i, r := range []Result{iq, ru} {
				n := len(r.JitterSeries)
				mean, max := 0.0, 0.0
				for _, v := range r.JitterSeries {
					mean += v
					if v > max {
						max = v
					}
				}
				if n > 0 {
					mean /= float64(n)
				}
				tb.AddRow(r.Name, n, mean, max)
				title := fmt.Sprintf("Figure %d: delay jitter over time — %s", i+2, r.Name)
				out = append(out, stats.NewTable(stats.AsciiChart(title, r.JitterTimes, r.JitterSeries, 72, 12)))
			}
			return out
		}},
		{ID: "table4", Title: "Table 4: Coordination against conflict — changing network", Run: func() []*stats.Table {
			rows := Table4(DefaultTable4())
			return []*stats.Table{resultTable(
				"Table 4: Conflict, changing network (VBR + 10Mb CBR cross)",
				rows, "Duration(s)", "Mesgs Recvd(%)", "Tagged Delay(ms)", "Tagged Jitter(ms)", "Delay(ms)", "Jitter(ms)")}
		}},
		{ID: "table5", Title: "Table 5: Coordination against over-reaction — changing application", Run: func() []*stats.Table {
			rows := Table5(DefaultTable5())
			return []*stats.Table{resultTable(
				"Table 5: Over-reaction, changing application (resolution adaptation)",
				rows, "Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter(ms)")}
		}},
		{ID: "table6", Title: "Table 6: Coordination against over-reaction — changing network", Run: func() []*stats.Table {
			rows := Table6(DefaultTable6())
			tb := stats.NewTable("Table 6: Over-reaction, changing network (VBR + CBR sweep)",
				"iperf traffic", "Scheme", "Throughput(KB/s)", "Duration(s)", "Delay(ms)", "Jitter(ms)")
			for _, row := range rows {
				tb.AddRow(formatMbps(row.CrossBps), row.Name, row.ThroughputKBs, row.DurationSec, row.DelayMs, row.JitterMs)
			}
			return []*stats.Table{tb, Fig4(Table6FixedHorizon(DefaultTable6()))}
		}},
		{ID: "fig4", Title: "Figure 4: Performance improvement — over-reaction", Run: func() []*stats.Table {
			return []*stats.Table{
				Fig4(Table6FixedHorizon(DefaultTable6())),
				Fig4Distribution(DefaultTable6(), 12),
			}
		}},
		{ID: "table7", Title: "Table 7: Limited granularity — changing application", Run: func() []*stats.Table {
			rows := Table7(DefaultTable7())
			return []*stats.Table{resultTable(
				"Table 7: Limited granularity, changing application (adapt every 20 frames)",
				rows, "Duration(s)", "Throughput(KB/s)", "Delay(ms)", "Jitter(ms)")}
		}},
		{ID: "table8", Title: "Table 8: Limited granularity — changing network", Run: func() []*stats.Table {
			rows := Table8(DefaultTable8())
			return []*stats.Table{resultTable(
				"Table 8: Limited granularity, changing network (125ms one-way delay)",
				rows, "Duration(s)", "Throughput(KB/s)", "Delay(ms)", "Jitter(ms)")}
		}},
	}
}

// AllWithAblations returns the paper experiments followed by the ablation
// studies and extensions.
func AllWithAblations() []Experiment {
	out := append(All(), Ablations()...)
	return append(out, MultiplexExperiment())
}

// ByID returns the experiment with the given id (paper tables/figures and
// ablations alike).
func ByID(id string) (Experiment, error) {
	for _, e := range AllWithAblations() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range AllWithAblations() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %s)", id, strings.Join(ids, ", "))
}
