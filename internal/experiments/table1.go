package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/traffic"
)

// timeSeconds converts a count to a duration of that many seconds.
func timeSeconds(n int) time.Duration { return time.Duration(n) * time.Second }

// Table1Spec parameterises the basic performance comparison (§3.2, Table 1):
// the changing-application workload (trace-driven frame sizes at a fixed
// nominal frame rate) against 18 Mb/s of CBR cross traffic, run under four
// schemes: TCP, IQ-RUDP, application adaptation only (fixed window), and
// IQ-RUDP with application adaptation.
type Table1Spec struct {
	Seed       int64
	Frames     int     // workload length in frames
	FPS        float64 // nominal frame rate
	Unit       int     // bytes per group member (paper: 3000)
	CrossBps   float64 // iperf-like CBR rate (paper: 18 Mb/s)
	Upper      float64 // adaptation thresholds (as in §3.4)
	Lower      float64
	MaxBacklog int
	Runs       int // seeds averaged per row (0 = 3)
}

// DefaultTable1 returns the calibrated defaults.
func DefaultTable1() Table1Spec {
	return Table1Spec{
		Seed:       1,
		Frames:     6000,
		FPS:        120,
		Unit:       1000,
		CrossBps:   18e6,
		Upper:      0.08,
		Lower:      0.01,
		MaxBacklog: 200,
		Runs:       3,
	}
}

// Table1 runs all four rows.
func Table1(spec Table1Spec) []Result {
	trace := frameTrace(spec.Frames)
	rows := []struct {
		name   string
		scheme Scheme
		adapt  bool
	}{
		{"TCP", SchemeTCP, false},
		{"IQ-RUDP", SchemeIQRUDP, false},
		{"App adaptation only", SchemeAppOnly, true},
		{"IQ-RUDP w/ app adaptation", SchemeIQRUDP, true},
	}
	var out []Result
	for _, row := range rows {
		out = append(out, runChangingApp(changingAppCfg{
			name:     row.name,
			scheme:   row.scheme,
			adapt:    row.adapt,
			seed:     spec.Seed,
			trace:    trace,
			frames:   spec.Frames,
			fps:      spec.FPS,
			unit:     spec.Unit,
			crossBps: spec.CrossBps,
			upper:    spec.Upper,
			lower:    spec.Lower,
			backlog:  spec.MaxBacklog,
		}))
	}
	return out
}

// changingAppCfg is shared by Tables 1, 5 and 7 (the changing-application
// scenario with a resolution adaptation).
type changingAppCfg struct {
	name   string
	scheme Scheme
	adapt  bool
	seed   int64

	trace  traffic.Trace
	frames int
	fps    float64
	unit   int

	crossBps float64
	upper    float64
	lower    float64
	backlog  int

	granularity int  // 0 = adapt immediately
	useCond     bool // attach ADAPT_COND at enactment
	keepSeries  bool
}

// runChangingApp executes one row of a changing-application experiment.
func runChangingApp(c changingAppCfg) Result {
	r := newRig(rigOpts{
		seed:       c.seed,
		dumbbell:   bottleneck20(),
		scheme:     c.scheme,
		keepSeries: c.keepSeries,
	})
	cross := traffic.NewCBR(r.d, c.crossBps, 1000)
	cross.Start()

	fs := &traffic.FrameSource{
		S: r.s, T: r.snd.T,
		FPS: c.fps, Unit: c.unit,
		Trace: c.trace, MaxFrames: c.frames,
		IndexByFrame: true,
		MaxBacklog:   c.backlog,
	}
	var adaptor *resolutionAdaptor
	if c.adapt && r.snd.Machine != nil {
		adaptor = &resolutionAdaptor{
			adjust:      fs.AdjustScale,
			frameSize:   func() int { return int(float64(c.unit) * fs.Scale * averageGroup(c.trace)) },
			granularity: c.granularity,
			useCond:     c.useCond,
			upper:       c.upper,
			lower:       c.lower,
			cooldown:    4 * time.Second,
		}
		adaptor.install(r.snd.Machine)
		if c.granularity > 0 {
			fs.AttrsFor = adaptor.attrsFor
		}
	}
	fs.Start()
	r.runToCompletion(fs.Done, 3*time.Second, 1800*time.Second)
	return r.col.result(c.name, nonZeroFrames(c.trace, c.frames))
}

// averageGroup returns the trace's mean group size (cached per call site
// needs are light).
func averageGroup(tr traffic.Trace) float64 { return tr.Mean() }

// nonZeroFrames counts workload frames with a non-zero size: zero-size
// frames are never offered to the transport, so percentage metrics use this
// denominator.
func nonZeroFrames(tr traffic.Trace, frames int) int {
	if len(tr) == 0 {
		return frames
	}
	n := 0
	for i := 0; i < frames; i++ {
		if tr[i%len(tr)].Group > 0 {
			n++
		}
	}
	return n
}
