package experiments

import (
	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Fig1 regenerates Figure 1, "Membership Dynamics": the (synthetic) MBone
// membership trace that drives frame sizes across the experiments. It
// returns the series and a summary table.
func Fig1() (traffic.Trace, *stats.Table) {
	tr := traffic.MembershipTrace(traffic.DefaultTraceConfig())
	tb := stats.NewTable("Figure 1: Membership dynamics (synthetic MBone-style trace)",
		"Samples", "Duration(s)", "Mean group", "Max group")
	tb.AddRow(len(tr), tr.Duration().Seconds(), tr.Mean(), tr.Max())
	return tr, tb
}

// vbrTrace returns the membership series driving the VBR cross source in
// the changing-network experiments: resting near zero with bursts, so the
// 500 fps × group×2000 B source averages ≈5–6 Mb/s and spikes well above.
func vbrTrace() traffic.Trace {
	cfg := traffic.DefaultTraceConfig()
	cfg.Seed = 99
	cfg.Base = 0
	cfg.Max = 0 // no resting membership: the VBR source is burst-only
	cfg.BurstProb = 0.06
	cfg.BurstMax = 3
	return traffic.MembershipTrace(cfg)
}

// frameTrace returns the per-frame membership sequence used by the
// changing-application workloads: the same generator, indexed per frame.
func frameTrace(frames int) traffic.Trace {
	cfg := traffic.DefaultTraceConfig()
	cfg.Base = 2
	cfg.Max = 5
	cfg.BurstMax = 6
	cfg.Duration = 0
	// One sample per frame; Step is nominal (indexed by frame, not time).
	cfg.Duration = timeSeconds(frames)
	return traffic.MembershipTrace(cfg)
}
