package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Ablations for the design choices DESIGN.md calls out. Each isolates one
// axis of the system on the Table-1 workload (changing application, 18 Mb/s
// CBR cross traffic) so the numbers are directly comparable.

// ablationBase runs the standard changing-application bulk scenario with
// per-run rig options.
func ablationBase(name string, seed int64, o rigOpts, frames int) Result {
	trace := frameTrace(frames)
	r := newRig(o)
	cross := traffic.NewCBR(r.d, 18e6, 1000)
	cross.Start()
	fs := &traffic.FrameSource{
		S: r.s, T: r.snd.T,
		FPS: 120, Unit: 1000,
		Trace: trace, MaxFrames: frames,
		IndexByFrame: true,
		MaxBacklog:   200,
	}
	fs.Start()
	r.runToCompletion(fs.Done, 3*time.Second, 1800*time.Second)
	return r.col.result(name, nonZeroFrames(trace, frames))
}

// AblationDecrease compares IQ-RUDP's LDA-style loss-proportional window
// decrease against TCP-style halving: the smoother decrease should buy
// throughput and pay a little jitter.
func AblationDecrease(seed int64, runs, frames int) []Result {
	variants := []struct {
		name    string
		halving bool
	}{
		{"loss-proportional (LDA-style)", false},
		{"halving (TCP-style)", true},
	}
	var out []Result
	for _, v := range variants {
		v := v
		out = append(out, meanResults(v.name, seedsFrom(seed, runs), func(s int64) Result {
			return ablationBase(v.name, s, rigOpts{
				seed: s, dumbbell: bottleneck20(), scheme: SchemeIQRUDP, halving: v.halving,
			}, frames)
		}))
	}
	return out
}

// AblationPeriod sweeps the measurement period: shorter periods give the
// congestion controller and callbacks fresher (but noisier) error ratios.
func AblationPeriod(seed int64, runs, frames int) []Result {
	var out []Result
	for _, period := range []time.Duration{
		125 * time.Millisecond,
		250 * time.Millisecond,
		500 * time.Millisecond, // the default
		1 * time.Second,
		2 * time.Second,
	} {
		period := period
		name := period.String()
		out = append(out, meanResults(name, seedsFrom(seed, runs), func(s int64) Result {
			return ablationBase(name, s, rigOpts{
				seed: s, dumbbell: bottleneck20(), scheme: SchemeIQRUDP, measPeriod: period,
			}, frames)
		}))
	}
	return out
}

// AblationPacing compares window-burst transmission against paced sending
// (one packet per srtt/cwnd): smoother queues at a small latency cost.
func AblationPacing(seed int64, runs, frames int) []Result {
	variants := []struct {
		name  string
		paced bool
	}{
		{"bursty (window at once)", false},
		{"paced (srtt/cwnd)", true},
	}
	var out []Result
	for _, v := range variants {
		v := v
		out = append(out, meanResults(v.name, seedsFrom(seed, runs), func(s int64) Result {
			return ablationBase(v.name, s, rigOpts{
				seed: s, dumbbell: bottleneck20(), scheme: SchemeIQRUDP, paced: v.paced,
			}, frames)
		}))
	}
	return out
}

// AblationQueue compares the bottleneck queue discipline: drop-tail (what the
// main experiments use) against RED.
func AblationQueue(seed int64, runs, frames int) []Result {
	variants := []struct {
		name string
		red  bool
	}{
		{"drop-tail", false},
		{"RED", true},
	}
	var out []Result
	for _, v := range variants {
		v := v
		out = append(out, meanResults(v.name, seedsFrom(seed, runs), func(s int64) Result {
			return ablationBase(v.name, s, rigOpts{
				seed: s, dumbbell: bottleneck20(), scheme: SchemeIQRUDP, useRED: v.red,
			}, frames)
		}))
	}
	return out
}

// Ablations returns the registry entries for the three ablation studies.
func Ablations() []Experiment {
	const (
		runs   = 3
		frames = 4000
	)
	table := func(title string, rows []Result) []*stats.Table {
		return []*stats.Table{resultTable(title, rows,
			"Duration(s)", "Throughput(KB/s)", "Delay(ms)", "Jitter(ms)")}
	}
	return []Experiment{
		{ID: "ablation-decrease", Title: "Ablation: window decrease rule", Run: func() []*stats.Table {
			return table("Ablation: loss-proportional vs halving decrease (Table-1 workload)",
				AblationDecrease(101, runs, frames))
		}},
		{ID: "ablation-period", Title: "Ablation: measurement period", Run: func() []*stats.Table {
			return table("Ablation: error-ratio measurement period (Table-1 workload)",
				AblationPeriod(102, runs, frames))
		}},
		{ID: "ablation-queue", Title: "Ablation: bottleneck queue discipline", Run: func() []*stats.Table {
			return table("Ablation: drop-tail vs RED at the bottleneck (Table-1 workload)",
				AblationQueue(103, runs, frames))
		}},
		{ID: "ablation-pacing", Title: "Ablation: paced vs bursty transmission", Run: func() []*stats.Table {
			return table("Ablation: window bursts vs srtt/cwnd pacing (Table-1 workload)",
				AblationPacing(104, runs, frames))
		}},
	}
}
