package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/traffic"
)

// Table4Spec parameterises the conflicting-interests experiment under a
// changing network (§3.3, Table 4): the application sends fixed-size
// messages as fast as the window allows while a VBR UDP source (500 fps,
// trace-driven sizes) plus CBR cross traffic congest the bottleneck. The
// adaptation and tolerance are as in Table 3.
type Table4Spec struct {
	Seed      int64
	Messages  int
	MsgSize   int
	CrossBps  float64
	VBRFps    float64
	VBRUnit   int
	Upper     float64
	Lower     float64
	Tolerance float64
	TagEvery  int
	Runs      int // seeds averaged per row (0 = 3)
}

// DefaultTable4 returns the calibrated defaults.
func DefaultTable4() Table4Spec {
	return Table4Spec{
		Seed:      4,
		Messages:  8000,
		MsgSize:   1000,
		CrossBps:  10e6,
		VBRFps:    500,
		VBRUnit:   2000,
		Upper:     0.08,
		Lower:     0.01,
		Tolerance: 0.40,
		TagEvery:  5,
		Runs:      3,
	}
}

// Table4 runs the IQ-RUDP and RUDP rows.
func Table4(spec Table4Spec) []Result {
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	var out []Result
	for _, row := range []struct {
		name   string
		scheme Scheme
	}{
		{"IQ-RUDP", SchemeIQRUDP},
		{"RUDP", SchemeRUDP},
	} {
		row := row
		out = append(out, meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
			return runConflictNet(row.name, row.scheme, seed, spec)
		}))
	}
	return out
}

// runConflictNet executes one row for one seed.
func runConflictNet(name string, scheme Scheme, seed int64, spec Table4Spec) Result {
	{
		r := newRig(rigOpts{
			seed:      seed,
			dumbbell:  bottleneck20(),
			scheme:    scheme,
			tolerance: spec.Tolerance,
		})
		cbr := traffic.NewCBR(r.d, spec.CrossBps, 1000)
		cbr.Start()
		vbr := traffic.NewVBR(r.d, vbrTrace(), spec.VBRFps, spec.VBRUnit)
		vbr.Loop = true
		vbr.Start()

		adaptor := &markingAdaptor{
			rng:      r.s.Rand(),
			tagEvery: spec.TagEvery,
			upper:    spec.Upper,
			lower:    spec.Lower,
		}
		if r.snd.Machine != nil {
			adaptor.install(r.snd.Machine)
		}
		app := &traffic.BulkSource{
			S: r.s, T: r.snd.T,
			Total:  spec.Messages,
			SizeOf: func(int) int { return spec.MsgSize },
			Mark:   adaptor.markPolicy,
		}
		app.Start()
		r.runToCompletion(app.Done, 3*time.Second, 1800*time.Second)
		return r.col.result(name, spec.Messages)
	}
}
