package experiments

import (
	"math"
	"math/rand"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/core"
)

// resolutionAdaptor implements the paper's §3.4 application adaptation: when
// the upper error-ratio threshold fires, frame size shrinks by a factor
// equal to the error ratio; when the lower threshold fires, it grows by 10%.
// With a granularity limit (§3.5) the change is enacted only at frame
// indices divisible by the granularity, announced to the transport with
// ADAPT_WHEN and described at enactment with ADAPT_PKTSIZE (plus ADAPT_COND
// when the scheme exchanges trigger conditions).
type resolutionAdaptor struct {
	// adjust applies the size change to the source and returns the factor
	// actually applied (sources clamp at full and minimum resolution).
	adjust    func(factor float64) float64
	frameSize func() int // current frame size, for the below-MSS condition

	granularity int  // 0 = enact immediately in the callback
	useCond     bool // attach ADAPT_COND at enactment (scheme 3)

	upper, lower float64

	// cooldown is the minimum gap between adaptations: the paper's target
	// applications adapt only on coarse-grained condition changes rather
	// than every measuring period (§2.3.1).
	cooldown    time.Duration
	lastAdapt   time.Duration
	everAdapted bool

	pendingDeg  float64 // size-change degree awaiting a frame boundary
	pendingCond float64 // error ratio at trigger time
	hasPending  bool

	adaptations int
}

// install registers the adaptor's callbacks on the machine.
func (a *resolutionAdaptor) install(m *core.Machine) {
	m.RegisterThresholds(a.upper, a.lower, a.onUpper, a.onLower)
}

func (a *resolutionAdaptor) onUpper(info core.CallbackInfo) *core.AdaptationReport {
	// Trigger on the per-period ratio, but size the change by the smoothed
	// ratio: at small windows a single period's ratio is quantisation noise
	// (two losses out of four sends reads as 50%), and over-sized changes
	// whipsaw both the application and the transport.
	deg := info.Smoothed
	if deg <= 0 {
		deg = info.ErrorRatio
	}
	if deg > 0.5 {
		deg = 0.5
	}
	return a.trigger(deg, info)
}

func (a *resolutionAdaptor) onLower(info core.CallbackInfo) *core.AdaptationReport {
	// Frame size increases by 10%: a negative degree for the transport
	// (window shrinks back by 1/1.1).
	return a.trigger(-0.1, info)
}

// trigger handles one threshold crossing with size-change degree deg.
func (a *resolutionAdaptor) trigger(deg float64, info core.CallbackInfo) *core.AdaptationReport {
	if deg == 0 {
		return nil
	}
	// The cooldown gates only downsampling: the paper's applications grow
	// frame size by 10% in every lower-threshold call, so recovery runs at
	// the measurement period, not the cooldown.
	if deg > 0 {
		if a.cooldown > 0 && a.everAdapted && info.Now-a.lastAdapt < a.cooldown {
			return nil
		}
		a.lastAdapt = info.Now
		a.everAdapted = true
	}
	if a.granularity <= 0 {
		// Immediate enactment inside the callback. Only the change the
		// source actually applied is reported: a clamped no-op must not
		// cause a transport re-adaptation.
		applied := a.adjust(1 - deg)
		if applied == 1 {
			return nil
		}
		a.adaptations++
		return &core.AdaptationReport{
			Kind:           core.AdaptResolution,
			Degree:         1 - applied,
			FrameSize:      a.frameSize(),
			CondErrorRatio: math.NaN(),
		}
	}
	// Delayed enactment: remember the change; announce ADAPT_WHEN. A newer
	// trigger before the boundary replaces the pending change, as a real
	// application would re-decide with fresher information. The recorded
	// condition uses the smoothed ratio — the same scale the transport will
	// compare against at enactment (Eq. 1).
	a.pendingDeg = deg
	a.pendingCond = info.Smoothed
	a.hasPending = true
	return &core.AdaptationReport{
		Kind:           core.AdaptResolution,
		Degree:         deg,
		WhenFrames:     a.granularity,
		CondErrorRatio: math.NaN(),
	}
}

// attrsFor is the FrameSource/BulkSource AttrsFor hook: at an allowed frame
// boundary it enacts the pending change and returns the ADAPT_* attribute
// list that rides the enacting send call.
func (a *resolutionAdaptor) attrsFor(i int, size int) *attr.List {
	if !a.hasPending || a.granularity <= 0 || i%a.granularity != 0 {
		return nil
	}
	cond := a.pendingCond
	a.hasPending = false
	applied := a.adjust(1 - a.pendingDeg)
	if applied == 1 {
		return nil
	}
	a.adaptations++
	attrs := attr.NewList(attr.Attr{Name: attr.AdaptPktSize, Value: attr.Float(1 - applied)})
	if a.useCond {
		attrs.Set(attr.AdaptCond, attr.Float(cond))
	}
	return attrs
}

// markingAdaptor implements the paper's §3.3 reliability adaptation: above
// the upper threshold, non-control messages are unmarked with probability
// max(0.40, 1.25·eratio); below the lower threshold the probability drops by
// 0.20. Every tagEvery-th message stays tagged (control information).
type markingAdaptor struct {
	rng      *rand.Rand
	tagEvery int
	prob     float64

	upper, lower float64
	adaptations  int
}

func (a *markingAdaptor) install(m *core.Machine) {
	m.RegisterThresholds(a.upper, a.lower, a.onUpper, a.onLower)
}

func (a *markingAdaptor) onUpper(info core.CallbackInfo) *core.AdaptationReport {
	p := 1.25 * info.ErrorRatio
	if p < 0.40 {
		p = 0.40
	}
	if p > 0.95 {
		p = 0.95
	}
	a.prob = p
	a.adaptations++
	return &core.AdaptationReport{Kind: core.AdaptReliability, Degree: p, CondErrorRatio: math.NaN()}
}

func (a *markingAdaptor) onLower(info core.CallbackInfo) *core.AdaptationReport {
	p := a.prob - 0.20
	if p < 0 {
		p = 0
	}
	if p == a.prob {
		return nil
	}
	a.prob = p
	a.adaptations++
	return &core.AdaptationReport{Kind: core.AdaptReliability, Degree: p, CondErrorRatio: math.NaN()}
}

// markPolicy is the source's MarkPolicy hook.
func (a *markingAdaptor) markPolicy(i int) bool {
	if a.tagEvery > 0 && i%a.tagEvery == 0 {
		return true // control message: must be delivered
	}
	return !(a.prob > 0 && a.rng.Float64() < a.prob)
}
