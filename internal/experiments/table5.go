package experiments

// Table5Spec parameterises the over-reaction experiment with a changing
// application (§3.4, Table 5): the application reduces its frame size by the
// error ratio when the upper threshold fires and grows it by 10% at the
// lower threshold. With coordination, the transport re-grows its packet
// window by 1/(1−rate_chg) while frames are below the MSS, so the two
// adaptations do not compound into under-utilisation.
type Table5Spec struct {
	Seed     int64
	Frames   int
	FPS      float64
	Unit     int
	CrossBps float64
	Upper    float64
	Lower    float64
	Backlog  int
	Runs     int // seeds averaged per row (0 = 3)
}

// DefaultTable5 returns the calibrated defaults: a lighter cross load than
// Table 1 so the application can sustain the higher rates the paper reports
// for this test.
func DefaultTable5() Table5Spec {
	return Table5Spec{
		Seed:     5,
		Frames:   6000,
		FPS:      250,
		Unit:     500,
		CrossBps: 18e6,
		Upper:    0.08,
		Lower:    0.01,
		Backlog:  200,
		Runs:     3,
	}
}

// Table5 runs the IQ-RUDP and RUDP rows.
func Table5(spec Table5Spec) []Result {
	runs := spec.Runs
	if runs <= 0 {
		runs = 3
	}
	trace := frameTrace(spec.Frames)
	var out []Result
	for _, row := range []struct {
		name   string
		scheme Scheme
	}{
		{"IQ-RUDP", SchemeIQRUDP},
		{"RUDP", SchemeRUDP},
	} {
		row := row
		out = append(out, meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
			return runChangingApp(changingAppCfg{
				name:     row.name,
				scheme:   row.scheme,
				adapt:    true,
				seed:     seed,
				trace:    trace,
				frames:   spec.Frames,
				fps:      spec.FPS,
				unit:     spec.Unit,
				crossBps: spec.CrossBps,
				upper:    spec.Upper,
				lower:    spec.Lower,
				backlog:  spec.Backlog,
			})
		}))
	}
	return out
}
