package experiments

import (
	"fmt"
	"math"
	"time"

	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/traffic"
)

// Table6Spec parameterises the over-reaction experiment with a changing
// network (§3.4, Table 6 and Figure 4): a bulk application adapts its packet
// size to the error ratio while VBR plus CBR cross traffic (at 12, 16 and
// 18 Mb/s) congest the bottleneck. Coordination grows the window by
// 1/(1−rate_chg) after each downsampling so the byte rate stays at the fair
// share.
type Table6Spec struct {
	Seed       int64
	Runs       int // seeds averaged per cell (0 = 5)
	Messages   int
	MsgSize    int // initial message size
	MinSize    int
	CrossRates []float64
	VBRFps     float64
	VBRUnit    int
	Upper      float64
	Lower      float64
}

// DefaultTable6 returns the calibrated defaults.
func DefaultTable6() Table6Spec {
	return Table6Spec{
		Seed:       6,
		Runs:       10,
		Messages:   8000,
		MsgSize:    1300,
		MinSize:    400,
		CrossRates: []float64{12e6, 16e6, 18e6},
		VBRFps:     500,
		VBRUnit:    2000,
		Upper:      0.08,
		Lower:      0.01,
	}
}

// Table6Row is one (cross rate, scheme) cell of Table 6.
type Table6Row struct {
	CrossBps float64
	Result
}

// Table6FixedHorizon measures the same scenario over a fixed 60-second
// window instead of a fixed workload: completion times of bursty runs are
// heavy-tailed, and the windowed rate is the statistically stable view the
// Figure 4 trend is computed from.
func Table6FixedHorizon(spec Table6Spec) []Table6Row {
	runs := spec.Runs
	if runs <= 0 {
		runs = 8
	}
	const (
		warm    = 5 * time.Second
		horizon = 60 * time.Second
	)
	var out []Table6Row
	for _, rate := range spec.CrossRates {
		for _, row := range []struct {
			name   string
			scheme Scheme
		}{
			{"IQ-RUDP", SchemeIQRUDP},
			{"RUDP", SchemeRUDP},
		} {
			row := row
			rate := rate
			out = append(out, Table6Row{
				CrossBps: rate,
				Result: meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
					r := newRig(rigOpts{seed: seed, dumbbell: bottleneck20(), scheme: row.scheme})
					cbr := traffic.NewCBR(r.d, rate, 1000)
					cbr.Start()
					vbr := traffic.NewVBR(r.d, vbrTrace(), spec.VBRFps, spec.VBRUnit)
					vbr.Loop = true
					vbr.Start()
					size := spec.MsgSize
					adjust := func(factor float64) float64 {
						old := size
						size = int(float64(size) * factor)
						if size < spec.MinSize {
							size = spec.MinSize
						}
						if size > spec.MsgSize {
							size = spec.MsgSize
						}
						return float64(size) / float64(old)
					}
					adaptor := &resolutionAdaptor{adjust: adjust, frameSize: func() int { return size },
						upper: spec.Upper, lower: spec.Lower}
					if r.snd.Machine != nil {
						adaptor.install(r.snd.Machine)
					}
					app := &traffic.BulkSource{S: r.s, T: r.snd.T, Total: 1 << 30,
						SizeOf: func(int) int { return size }}
					app.Start()
					r.s.RunUntil(r.s.Now() + warm)
					base := r.col.bytes
					r.s.RunUntil(r.s.Now() + horizon)
					res := r.col.result(row.name, 0)
					res.DurationSec = horizon.Seconds()
					res.ThroughputKBs = float64(r.col.bytes-base) / horizon.Seconds() / 1000
					return res
				}),
			})
		}
	}
	return out
}

// Table6 runs IQ-RUDP vs RUDP at each cross-traffic rate.
func Table6(spec Table6Spec) []Table6Row {
	var out []Table6Row
	for _, rate := range spec.CrossRates {
		for _, row := range []struct {
			name   string
			scheme Scheme
		}{
			{"IQ-RUDP", SchemeIQRUDP},
			{"RUDP", SchemeRUDP},
		} {
			runs := spec.Runs
			if runs <= 0 {
				runs = 5
			}
			row := row
			rate := rate
			out = append(out, Table6Row{
				CrossBps: rate,
				Result: meanResults(row.name, seedsFrom(spec.Seed, runs), func(seed int64) Result {
					s2 := spec
					s2.Seed = seed
					return runOverreactionNet(row.name, row.scheme, rate, s2)
				}),
			})
		}
	}
	return out
}

// runOverreactionNet executes one cell for one seed.
func runOverreactionNet(name string, scheme Scheme, crossBps float64, spec Table6Spec) Result {
	r := newRig(rigOpts{seed: spec.Seed, dumbbell: bottleneck20(), scheme: scheme})
	cbr := traffic.NewCBR(r.d, crossBps, 1000)
	cbr.Start()
	vbr := traffic.NewVBR(r.d, vbrTrace(), spec.VBRFps, spec.VBRUnit)
	vbr.Loop = true
	vbr.Start()

	// The application's resolution adaptation: packet size shrinks by the
	// error ratio (upper) and grows 10% (lower), clamped to
	// [MinSize, MsgSize].
	size := spec.MsgSize
	adjust := func(factor float64) float64 {
		old := size
		size = int(float64(size) * factor)
		if size < spec.MinSize {
			size = spec.MinSize
		}
		if size > spec.MsgSize {
			size = spec.MsgSize
		}
		return float64(size) / float64(old)
	}
	// Per-measuring-period adaptation, as in the paper (no cooldown): the
	// applied-degree reporting and smoothed degrees keep it stable.
	adaptor := &resolutionAdaptor{
		adjust:    adjust,
		frameSize: func() int { return size },
		upper:     spec.Upper,
		lower:     spec.Lower,
	}
	if r.snd.Machine != nil {
		adaptor.install(r.snd.Machine)
	}
	app := &traffic.BulkSource{
		S: r.s, T: r.snd.T,
		Total:  spec.Messages,
		SizeOf: func(int) int { return size },
	}
	app.Start()
	r.runToCompletion(app.Done, 3*time.Second, 1800*time.Second)
	return r.col.result(name, spec.Messages)
}

// Fig4 derives the Figure 4 series from Table 6 results: per cross-traffic
// rate, the IQ-RUDP throughput improvement and jitter reduction over RUDP in
// percent.
func Fig4(rows []Table6Row) *stats.Table {
	tb := stats.NewTable("Figure 4: IQ-RUDP improvement over RUDP vs congestion (from Table 6)",
		"iperf traffic", "Throughput +%", "Jitter −%")
	byRate := map[float64]map[string]Result{}
	for _, row := range rows {
		if byRate[row.CrossBps] == nil {
			byRate[row.CrossBps] = map[string]Result{}
		}
		byRate[row.CrossBps][row.Name] = row.Result
	}
	var rates []float64
	for r := range byRate {
		rates = append(rates, r)
	}
	// Rates are few; insertion sort keeps it dependency-free.
	for i := 1; i < len(rates); i++ {
		for j := i; j > 0 && rates[j] < rates[j-1]; j-- {
			rates[j], rates[j-1] = rates[j-1], rates[j]
		}
	}
	for _, rate := range rates {
		iq, okIQ := byRate[rate]["IQ-RUDP"]
		ru, okRU := byRate[rate]["RUDP"]
		if !okIQ || !okRU || ru.ThroughputKBs == 0 || ru.Jitter == 0 {
			continue
		}
		tput := (iq.ThroughputKBs/ru.ThroughputKBs - 1) * 100
		jit := (1 - iq.Jitter/ru.Jitter) * 100
		tb.AddRow(formatMbps(rate), tput, jit)
	}
	return tb
}

// Fig4Distribution is the statistically honest Figure 4: for each cross rate
// it runs N seed-paired fixed-horizon comparisons and reports the per-seed
// throughput-improvement distribution (mean, median, 10th and 90th
// percentiles). Completion-time runs under bursty cross traffic are heavy-
// tailed, so a single run — like the paper's — can land anywhere within the
// reported band.
func Fig4Distribution(spec Table6Spec, seedsPerRate int) *stats.Table {
	if seedsPerRate <= 0 {
		seedsPerRate = 12
	}
	tb := stats.NewTable(
		"Figure 4 (distribution): per-seed IQ-RUDP throughput improvement over RUDP, fixed 60s horizon",
		"iperf traffic", "Mean +%", "Median +%", "p10 +%", "p90 +%")
	for _, rate := range spec.CrossRates {
		var diffs stats.Sample
		for k := 0; k < seedsPerRate; k++ {
			s2 := spec
			s2.Seed = spec.Seed + int64(k)*104729
			s2.Runs = 1
			s2.CrossRates = []float64{rate}
			rows := Table6FixedHorizon(s2)
			if len(rows) != 2 || rows[1].ThroughputKBs == 0 {
				continue
			}
			diffs.Add((rows[0].ThroughputKBs/rows[1].ThroughputKBs - 1) * 100)
		}
		tb.AddRow(formatMbps(rate), diffs.Mean(), diffs.Median(),
			diffs.Quantile(0.10), diffs.Quantile(0.90))
	}
	return tb
}

func formatMbps(bps float64) string {
	return fmt.Sprintf("%gMbps", math.Round(bps/1e5)/10)
}
