// Package experiments regenerates every table and figure of the paper's
// evaluation (§3). Each experiment builds the Emulab-equivalent dumbbell,
// attaches the workload and cross traffic, runs the scenario for each
// transport/adaptation scheme, and reports the paper's metrics: duration,
// throughput, message inter-arrival ("delay") and its deviation ("jitter"),
// percent messages delivered, and the tagged-only variants.
package experiments

import (
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/endpoint"
	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/sim"
	"github.com/cercs/iqrudp/internal/stats"
	"github.com/cercs/iqrudp/internal/tcpsim"
	"github.com/cercs/iqrudp/internal/trace"
)

// pkgTracer, when set via SetTracer, is attached to every IQ-RUDP machine
// the experiments build. The simulator is single-threaded, so events from
// one experiment arrive in deterministic order; distinct connections are
// distinguished by ConnID.
var pkgTracer trace.Tracer

// SetTracer installs (or, with nil, removes) a tracer on all subsequently
// constructed experiment transports — the hook behind cmd/iqbench's -trace
// and -metrics-addr flags. Not safe to call concurrently with a running
// experiment.
func SetTracer(t trace.Tracer) { pkgTracer = t }

// Scheme selects the transport/adaptation configuration under test.
type Scheme int

// Schemes used across the experiments.
const (
	// SchemeTCP runs the TCP Reno baseline.
	SchemeTCP Scheme = iota
	// SchemeIQRUDP runs IQ-RUDP with coordination enabled.
	SchemeIQRUDP
	// SchemeRUDP runs the transport without coordination: application
	// adaptations are never communicated to the window algorithm.
	SchemeRUDP
	// SchemeAppOnly disables the adaptive congestion window (fixed
	// BDP-sized window) while still exporting metrics — the paper's
	// "application adaptation only" configuration.
	SchemeAppOnly
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeTCP:
		return "TCP"
	case SchemeIQRUDP:
		return "IQ-RUDP"
	case SchemeRUDP:
		return "RUDP"
	case SchemeAppOnly:
		return "App adaptation only"
	default:
		return "unknown"
	}
}

// Result is one row of a results table.
type Result struct {
	Name string

	DurationSec   float64 // first send to last delivery
	ThroughputKBs float64 // delivered payload bytes / duration / 1000
	InterArrival  float64 // mean message inter-arrival, seconds
	Jitter        float64 // stddev of inter-arrival, seconds

	MsgsRecvdPct   float64 // delivered / offered × 100
	TaggedDelayMs  float64 // tagged-only inter-arrival mean, ms
	TaggedJitterMs float64
	DelayMs        float64 // all-message inter-arrival mean, ms
	JitterMs       float64

	DeliveredMsgs int
	OfferedMsgs   int

	// JitterSeries/JitterTimes are retained when requested (Figures 2–3):
	// per-arrival jitter values and their arrival times.
	JitterSeries []float64
	JitterTimes  []time.Duration
}

// collector gathers receiver-side delivery statistics.
type collector struct {
	all       *stats.Arrivals
	tagged    *stats.Arrivals
	bytes     uint64
	count     int
	lastAt    time.Duration
	keepSerie bool
}

func newCollector(keepSeries bool) *collector {
	return &collector{
		all:       stats.NewArrivals(keepSeries),
		tagged:    stats.NewArrivals(false),
		keepSerie: keepSeries,
	}
}

func (c *collector) onMessage(msg core.Message) {
	c.count++
	c.bytes += uint64(len(msg.Data))
	c.lastAt = msg.DeliveredAt
	c.all.Observe(msg.DeliveredAt)
	if msg.Marked {
		c.tagged.Observe(msg.DeliveredAt)
	}
}

// result assembles the metrics, given the number of messages the application
// offered.
func (c *collector) result(name string, offered int) Result {
	dur := c.lastAt.Seconds()
	r := Result{
		Name:           name,
		DurationSec:    dur,
		InterArrival:   c.all.MeanInterarrival(),
		Jitter:         c.all.Jitter(),
		DelayMs:        c.all.MeanInterarrival() * 1000,
		JitterMs:       c.all.Jitter() * 1000,
		TaggedDelayMs:  c.tagged.MeanInterarrival() * 1000,
		TaggedJitterMs: c.tagged.Jitter() * 1000,
		DeliveredMsgs:  c.count,
		OfferedMsgs:    offered,
	}
	if dur > 0 {
		r.ThroughputKBs = float64(c.bytes) / dur / 1000
	}
	if offered > 0 {
		r.MsgsRecvdPct = float64(c.count) / float64(offered) * 100
	}
	if c.keepSerie {
		serie, times := c.all.Series()
		r.JitterSeries = serie
		r.JitterTimes = times
	}
	return r
}

// rig is one experiment instance: topology, transports, collector.
type rig struct {
	s   *sim.Scheduler
	d   *netem.Dumbbell
	snd *endpoint.Endpoint
	rcv *endpoint.Endpoint
	col *collector
}

// rigOpts parameterises rig construction.
type rigOpts struct {
	seed       int64
	dumbbell   netem.DumbbellConfig
	scheme     Scheme
	tolerance  float64 // receiver loss tolerance
	keepSeries bool
	fixedWnd   float64 // SchemeAppOnly window; 0 = default
	mss        int

	// Ablation knobs.
	halving    bool          // TCP-style halving decrease instead of LDA-style
	measPeriod time.Duration // measurement period override
	useRED     bool          // RED on the bottleneck instead of drop-tail
	paced      bool          // paced transmissions instead of window bursts
}

func newRig(o rigOpts) *rig {
	s := sim.New(o.seed)
	d := netem.NewDumbbell(s, o.dumbbell)
	if o.useRED {
		qmax := o.dumbbell.QueueMax
		if qmax <= 0 {
			qmax = 50 // the BDP default of the standard bottleneck
		}
		d.Bottleneck().EnableRED(netem.DefaultRED(qmax))
		d.Reverse().EnableRED(netem.DefaultRED(qmax))
	}
	r := &rig{s: s, d: d, col: newCollector(o.keepSeries)}

	mkCore := func(coordinate, disableCC bool) func(env core.Env) endpoint.Transport {
		return func(env core.Env) endpoint.Transport {
			cfg := core.DefaultConfig()
			if o.mss > 0 {
				cfg.MSS = o.mss
			}
			cfg.Coordinate = coordinate
			cfg.DisableCC = disableCC
			if disableCC && o.fixedWnd > 0 {
				cfg.FixedWindow = o.fixedWnd
			}
			cfg.LossTolerance = o.tolerance
			cfg.HalvingDecrease = o.halving
			cfg.Paced = o.paced
			if o.measPeriod > 0 {
				cfg.MeasurementPeriod = o.measPeriod
			}
			cfg.Tracer = pkgTracer
			return core.NewMachine(cfg, env)
		}
	}
	switch o.scheme {
	case SchemeTCP:
		mk := func(env core.Env) endpoint.Transport {
			cfg := tcpsim.DefaultConfig()
			if o.mss > 0 {
				cfg.MSS = o.mss
			}
			return tcpsim.NewMachine(cfg, env)
		}
		r.snd, r.rcv = endpoint.PairTransport(d, mk, mk)
	case SchemeIQRUDP:
		r.snd, r.rcv = endpoint.PairTransport(d, mkCore(true, false), mkCore(true, false))
	case SchemeRUDP:
		r.snd, r.rcv = endpoint.PairTransport(d, mkCore(false, false), mkCore(false, false))
	case SchemeAppOnly:
		r.snd, r.rcv = endpoint.PairTransport(d, mkCore(false, true), mkCore(false, true))
	}
	if m, ok := r.snd.T.(*core.Machine); ok {
		r.snd.Machine = m
	}
	if m, ok := r.rcv.T.(*core.Machine); ok {
		r.rcv.Machine = m
	}
	r.rcv.OnMessage = r.col.onMessage
	endpoint.WaitEstablished(s, r.snd, r.rcv, 10*time.Second)
	return r
}

// runToCompletion advances the simulation until the workload reports done
// and deliveries have been quiet for quietFor, or until cap elapses.
func (r *rig) runToCompletion(done func() bool, quietFor, cap time.Duration) {
	lastCount := -1
	quietSince := r.s.Now()
	for r.s.Now() < cap {
		r.s.RunUntil(r.s.Now() + 500*time.Millisecond)
		if !done() {
			quietSince = r.s.Now()
			continue
		}
		if r.col.count != lastCount {
			lastCount = r.col.count
			quietSince = r.s.Now()
			continue
		}
		if r.s.Now()-quietSince >= quietFor {
			return
		}
	}
}

// bottleneck20 returns the paper's standard bottleneck: 20 Mb/s, 30 ms RTT.
func bottleneck20() netem.DumbbellConfig { return netem.DefaultDumbbell() }

// meanResults runs one experiment row across several seeds and averages the
// metrics — congestion experiments against bursty cross traffic are noisy,
// and single runs can invert small effects.
func meanResults(name string, seeds []int64, run func(seed int64) Result) Result {
	if len(seeds) == 0 {
		panic("experiments: meanResults needs at least one seed")
	}
	var acc Result
	for _, seed := range seeds {
		r := run(seed)
		acc.DurationSec += r.DurationSec
		acc.ThroughputKBs += r.ThroughputKBs
		acc.InterArrival += r.InterArrival
		acc.Jitter += r.Jitter
		acc.MsgsRecvdPct += r.MsgsRecvdPct
		acc.TaggedDelayMs += r.TaggedDelayMs
		acc.TaggedJitterMs += r.TaggedJitterMs
		acc.DelayMs += r.DelayMs
		acc.JitterMs += r.JitterMs
		acc.DeliveredMsgs += r.DeliveredMsgs
		acc.OfferedMsgs += r.OfferedMsgs
	}
	n := float64(len(seeds))
	acc.Name = name
	acc.DurationSec /= n
	acc.ThroughputKBs /= n
	acc.InterArrival /= n
	acc.Jitter /= n
	acc.MsgsRecvdPct /= n
	acc.TaggedDelayMs /= n
	acc.TaggedJitterMs /= n
	acc.DelayMs /= n
	acc.JitterMs /= n
	acc.DeliveredMsgs /= len(seeds)
	acc.OfferedMsgs /= len(seeds)
	return acc
}

// seedsFrom derives n distinct seeds from a base seed.
func seedsFrom(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)*1000003
	}
	return out
}
