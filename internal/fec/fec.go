// Package fec is the transport's forward-erasure repair layer: a pluggable
// parity codec driven over the send window so a single lost DATA packet per
// group can be reconstructed at the receiver without waiting a round trip
// for SACK- or RTO-driven recovery (the FlEC argument applied to IQ-RUDP's
// marking model).
//
// The sender folds every first transmission into the open group and emits
// one REPAIR packet per K data packets (packet.REPAIR: Seq = group base,
// FragCnt = span, Payload = parity). The receiver keeps a bounded ring of
// recently seen data units; when a repair arrives with exactly one group
// member missing — or a later arrival reduces a parked group to one hole —
// the missing packet is reconstructed and handed back to the protocol
// machine, which feeds it through the normal receive path.
//
// The package is sans-I/O and knows nothing about the Machine: internal/core
// owns when to add, flush and reconstruct.
package fec

import (
	"encoding/binary"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/packet"
)

// Codec is the pluggable repair arithmetic. XOR ships first; the interface
// mirrors a systematic erasure code with one repair block per group, so a
// Reed–Solomon implementation (fold = multiply by the generator coefficient
// at the unit's group index, reconstruct = solve for the missing index) can
// drop in without changing Encoder or Decoder.
type Codec interface {
	// Name identifies the codec on the wire and in diagnostics.
	Name() string
	// Fold accumulates the unit at group index idx into acc, growing acc as
	// needed (short units are treated as zero-padded), and returns acc.
	Fold(acc, unit []byte, idx int) []byte
	// Reconstruct extracts the unit at missing group index idx from an
	// accumulator holding the repair block folded with every present unit.
	Reconstruct(acc []byte, idx int) []byte
}

// XOR is the parity codec: the repair block is the byte-wise XOR of the
// group's units, recovering any single missing unit.
type XOR struct{}

// Name implements Codec.
func (XOR) Name() string { return "xor" }

// Fold implements Codec; for XOR the group index is irrelevant.
func (XOR) Fold(acc, unit []byte, _ int) []byte {
	for len(acc) < len(unit) {
		acc = append(acc, 0)
	}
	for i, b := range unit {
		acc[i] ^= b
	}
	return acc
}

// Reconstruct implements Codec: after folding every present unit into the
// parity, the accumulator is the missing unit.
func (XOR) Reconstruct(acc []byte, _ int) []byte { return acc }

// GroupMax caps the repair-group span: the decoder tracks membership in a
// 64-bit mask, and one parity block cannot usefully cover more anyway.
const GroupMax = 64

// unitFlagsMask keeps only the flags that survive reconstruction. The
// attr-presence and forward-seq flags describe wire-encoding details whose
// side data (the raw attr block, the Fwd field) is carried or dropped
// explicitly, and they differ between the sender's staged flags and the
// receiver's decoded flags — folding them would corrupt the parity.
const unitFlagsMask = packet.FlagMarked | packet.FlagMsgEnd

// A unit is a DATA packet re-framed for parity arithmetic, so that
// reconstruction recovers framing and payload exactly:
//
//	flags(1) msgID(4) frag(2) fragCnt(2) attrLen(2) payloadLen(2)
//	attrBlock(attrLen) payload(payloadLen)
//
// Units in one group are XORed zero-padded to the longest member; the
// length prefixes let the parse trim the padding back off.
const unitHeader = 1 + 4 + 2 + 2 + 2 + 2

// appendUnit encodes one data packet as a parity unit, appending to dst.
func appendUnit(dst []byte, flags uint8, msgID uint32, frag, fragCnt uint16, attrs *attr.List, payload []byte) ([]byte, error) {
	dst = append(dst, flags&unitFlagsMask)
	dst = binary.BigEndian.AppendUint32(dst, msgID)
	dst = binary.BigEndian.AppendUint16(dst, frag)
	dst = binary.BigEndian.AppendUint16(dst, fragCnt)
	aoff := len(dst)
	dst = append(dst, 0, 0)
	if attrs.Len() > 0 {
		var err error
		dst, err = attr.AppendEncode(dst, attrs)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint16(dst[aoff:], uint16(len(dst)-aoff-2))
	}
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(payload)))
	return append(dst, payload...), nil
}

// Recovered is one reconstructed data packet, ready to be re-framed as a
// packet.Packet and fed through the machine's receive path. Payload and
// Attrs are owned by the caller once returned (the decoder drops its
// references).
type Recovered struct {
	Seq     uint32
	Flags   uint8
	MsgID   uint32
	Frag    uint16
	FragCnt uint16
	Attrs   *attr.List
	Payload []byte

	// HoleOpenAt is the receive-side time the reconstruction hole became
	// observable: the earliest arrival among the group's later members (or
	// the repair packet itself when it arrived first). Repair latency is
	// measured from here.
	HoleOpenAt time.Duration
}

// parseUnit decodes a reconstructed unit buffer (possibly carrying parity
// zero-padding after the payload) into r.
func parseUnit(b []byte, seq uint32, r *Recovered) bool {
	if len(b) < unitHeader {
		return false
	}
	r.Seq = seq
	r.Flags = b[0] & unitFlagsMask
	r.MsgID = binary.BigEndian.Uint32(b[1:])
	r.Frag = binary.BigEndian.Uint16(b[5:])
	r.FragCnt = binary.BigEndian.Uint16(b[7:])
	alen := int(binary.BigEndian.Uint16(b[9:]))
	off := 11 + alen
	if off+2 > len(b) {
		return false
	}
	r.Attrs = nil
	if alen > 0 {
		attrs, _, err := attr.Decode(b[11 : 11+alen])
		if err != nil {
			return false
		}
		r.Attrs = attrs
	}
	plen := int(binary.BigEndian.Uint16(b[off:]))
	off += 2
	if off+plen > len(b) {
		return false
	}
	r.Payload = b[off : off+plen]
	return true
}

// Encoder folds the sender's first transmissions into repair groups. It is
// not safe for concurrent use; the machine drives it from its serialisation
// context.
type Encoder struct {
	c Codec
	k int // group size target: data packets per repair packet

	base uint32 // open group's base sequence number
	next uint32 // next expected sequence number (contiguity check)
	n    int    // units folded into the open group
	acc  []byte // parity accumulator
	unit []byte // unit staging scratch
}

// NewEncoder builds an encoder emitting one repair per k data packets
// (clamped to [2, GroupMax]).
func NewEncoder(c Codec, k int) *Encoder {
	e := &Encoder{c: c}
	e.SetGroup(k)
	return e
}

// Group returns the current group size K.
func (e *Encoder) Group() int { return e.k }

// SetGroup retunes the group size (adaptive repair rate). An open group
// larger than the new K closes at the next Add.
func (e *Encoder) SetGroup(k int) {
	if k < 2 {
		k = 2
	}
	if k > GroupMax {
		k = GroupMax
	}
	e.k = k
}

// Pending returns the number of data packets in the open group.
func (e *Encoder) Pending() int { return e.n }

// Base returns the open group's base sequence number (meaningful when
// Pending > 0).
func (e *Encoder) Base() uint32 { return e.base }

// Add folds one first-transmission DATA packet into the open group and
// reports whether the group reached K (the caller must then emit Flush's
// repair). A sequence number that breaks contiguity — a retransmission
// interleaved by the caller, or a skipped packet — restarts the group at
// seq: repair groups must be contiguous runs or the receiver cannot name
// the members.
func (e *Encoder) Add(seq uint32, flags uint8, msgID uint32, frag, fragCnt uint16, attrs *attr.List, payload []byte) bool {
	if e.n > 0 && seq != e.next {
		e.reset()
	}
	if e.n == 0 {
		e.base = seq
	}
	unit, err := appendUnit(e.unit[:0], flags, msgID, frag, fragCnt, attrs, payload)
	if err != nil {
		e.unit = unit[:0]
		e.reset()
		return false
	}
	e.unit = unit
	e.acc = e.c.Fold(e.acc, unit, e.n)
	e.n++
	e.next = seq + 1
	return e.n >= e.k
}

// Flush closes the open group, returning its base, span and parity block.
// The parity is borrowed: it is valid until the next Add. ok is false when
// no group is open.
func (e *Encoder) Flush() (base uint32, span int, parity []byte, ok bool) {
	if e.n == 0 {
		return 0, 0, nil, false
	}
	base, span, parity = e.base, e.n, e.acc
	e.n = 0
	// acc's storage is handed out until the next Add; reacquire lazily.
	e.acc = nil
	return base, span, parity, true
}

func (e *Encoder) reset() {
	e.n = 0
	if e.acc != nil {
		e.acc = e.acc[:0]
	}
}
