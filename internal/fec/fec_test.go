package fec

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/packet"
)

// pkt is a test-side stand-in for one DATA packet's FEC-relevant fields.
type pkt struct {
	seq     uint32
	flags   uint8
	msgID   uint32
	frag    uint16
	fragCnt uint16
	attrs   *attr.List
	payload []byte
}

func mkPkts(base uint32, n int) []pkt {
	out := make([]pkt, n)
	for i := range out {
		out[i] = pkt{
			seq:     base + uint32(i),
			flags:   packet.FlagMarked,
			msgID:   100 + uint32(i),
			frag:    0,
			fragCnt: 1,
			payload: []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i))),
		}
	}
	out[n-1].flags |= packet.FlagMsgEnd
	return out
}

// encodeGroup runs the sender side over pkts and returns the repair.
func encodeGroup(t *testing.T, e *Encoder, pkts []pkt) (base uint32, span int, parity []byte) {
	t.Helper()
	for i, p := range pkts {
		full := e.Add(p.seq, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload)
		if full != (i == len(pkts)-1 && len(pkts) >= e.Group()) {
			t.Fatalf("Add(%d): full = %v at i=%d (k=%d)", p.seq, full, i, e.Group())
		}
	}
	base, span, parity, ok := e.Flush()
	if !ok {
		t.Fatal("Flush: no open group")
	}
	// Parity is borrowed until the next Add; copy for test convenience.
	return base, span, append([]byte(nil), parity...)
}

func checkRecovered(t *testing.T, r Recovered, want pkt) {
	t.Helper()
	if r.Seq != want.seq {
		t.Errorf("Seq = %d, want %d", r.Seq, want.seq)
	}
	if r.Flags != want.flags&unitFlagsMask {
		t.Errorf("Flags = %#x, want %#x", r.Flags, want.flags&unitFlagsMask)
	}
	if r.MsgID != want.msgID || r.Frag != want.frag || r.FragCnt != want.fragCnt {
		t.Errorf("framing = (%d,%d,%d), want (%d,%d,%d)",
			r.MsgID, r.Frag, r.FragCnt, want.msgID, want.frag, want.fragCnt)
	}
	if !bytes.Equal(r.Payload, want.payload) {
		t.Errorf("Payload = %q, want %q", r.Payload, want.payload)
	}
}

func TestRecoverFromRepair(t *testing.T) {
	// Drop each position in turn; the repair alone must close the hole.
	for drop := 0; drop < 4; drop++ {
		e := NewEncoder(XOR{}, 4)
		d := NewDecoder(XOR{}, 0)
		pkts := mkPkts(10, 4)
		base, span, parity := encodeGroup(t, e, pkts)
		if base != 10 || span != 4 {
			t.Fatalf("group = (%d,%d), want (10,4)", base, span)
		}
		var recs []Recovered
		for i, p := range pkts {
			if i == drop {
				continue
			}
			recs = d.OnData(p.seq, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload, time.Duration(i), recs)
		}
		if len(recs) != 0 {
			t.Fatalf("drop=%d: recovered before repair arrived", drop)
		}
		recs = d.OnRepair(base, span, parity, 10, 100, recs)
		if len(recs) != 1 {
			t.Fatalf("drop=%d: got %d recoveries, want 1", drop, len(recs))
		}
		checkRecovered(t, recs[0], pkts[drop])
	}
}

func TestRecoverViaLateArrival(t *testing.T) {
	// Two holes on repair arrival: the group parks, and a later (retransmit)
	// arrival of one hole closes the other.
	e := NewEncoder(XOR{}, 4)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(20, 4)
	base, span, parity := encodeGroup(t, e, pkts)

	var recs []Recovered
	recs = d.OnData(pkts[0].seq, pkts[0].flags, pkts[0].msgID, pkts[0].frag, pkts[0].fragCnt, pkts[0].attrs, pkts[0].payload, 1, recs)
	recs = d.OnData(pkts[3].seq, pkts[3].flags, pkts[3].msgID, pkts[3].frag, pkts[3].fragCnt, pkts[3].attrs, pkts[3].payload, 2, recs)
	recs = d.OnRepair(base, span, parity, 21, 3, recs)
	if len(recs) != 0 {
		t.Fatalf("recovered with two holes: %+v", recs)
	}
	// Retransmission of pkts[1] arrives; pkts[2] must be reconstructed.
	recs = d.OnData(pkts[1].seq, pkts[1].flags, pkts[1].msgID, pkts[1].frag, pkts[1].fragCnt, pkts[1].attrs, pkts[1].payload, 4, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	checkRecovered(t, recs[0], pkts[2])
}

func TestAttrsSurviveReconstruction(t *testing.T) {
	e := NewEncoder(XOR{}, 2)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(5, 2)
	pkts[1].attrs = attr.NewList(
		attr.Attr{Name: attr.Marked, Value: attr.Bool(true)},
		attr.Attr{Name: attr.Deadline, Value: attr.Float(0.25)},
		attr.Attr{Name: "APP_KEY", Value: attr.String_("v")},
	)
	base, span, parity := encodeGroup(t, e, pkts)

	var recs []Recovered
	recs = d.OnData(pkts[0].seq, pkts[0].flags, pkts[0].msgID, pkts[0].frag, pkts[0].fragCnt, pkts[0].attrs, pkts[0].payload, 1, recs)
	recs = d.OnRepair(base, span, parity, 5, 2, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	checkRecovered(t, recs[0], pkts[1])
	got := recs[0].Attrs
	if got.Len() != 3 {
		t.Fatalf("Attrs.Len = %d, want 3", got.Len())
	}
	if v, err := got.Float(attr.Deadline); err != nil || v != 0.25 {
		t.Errorf("Deadline = %v, %v", v, err)
	}
	want, _ := attr.AppendEncode(nil, pkts[1].attrs)
	back, _ := attr.AppendEncode(nil, got)
	if !bytes.Equal(want, back) {
		t.Errorf("attr block not byte-identical after reconstruction")
	}
}

func TestAgedOutGroupDropped(t *testing.T) {
	// A member below rcvNxt that no longer sits in the history ring can
	// never be folded: the group must be discarded, not parked.
	e := NewEncoder(XOR{}, 3)
	d := NewDecoder(XOR{}, 4) // tiny ring
	pkts := mkPkts(100, 3)
	base, span, parity := encodeGroup(t, e, pkts)

	var recs []Recovered
	// Only pkts[2] is in the ring; pkts[0] was delivered long ago (rcvNxt
	// past it) and pkts[1] was lost.
	recs = d.OnData(pkts[2].seq, pkts[2].flags, pkts[2].msgID, pkts[2].frag, pkts[2].fragCnt, pkts[2].attrs, pkts[2].payload, 1, recs)
	recs = d.OnRepair(base, span, parity, 101, 2, recs)
	if len(recs) != 0 {
		t.Fatalf("recovered from dead group: %+v", recs)
	}
	if len(d.groups) != 0 {
		t.Fatalf("dead group parked: %d groups", len(d.groups))
	}
}

func TestEncoderContiguityReset(t *testing.T) {
	e := NewEncoder(XOR{}, 4)
	p := mkPkts(0, 1)[0]
	e.Add(7, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload)
	e.Add(8, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload)
	// Gap: sequence 10 restarts the group.
	e.Add(10, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload)
	if e.Base() != 10 || e.Pending() != 1 {
		t.Fatalf("after gap: base=%d pending=%d, want 10,1", e.Base(), e.Pending())
	}
}

func TestPartialFlush(t *testing.T) {
	e := NewEncoder(XOR{}, 8)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(40, 3)
	for _, p := range pkts {
		if e.Add(p.seq, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload) {
			t.Fatal("group full before K")
		}
	}
	base, span, parity, ok := e.Flush()
	if !ok || base != 40 || span != 3 {
		t.Fatalf("Flush = (%d,%d,%v)", base, span, ok)
	}
	var recs []Recovered
	for _, p := range pkts[:2] {
		recs = d.OnData(p.seq, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload, 1, recs)
	}
	recs = d.OnRepair(base, span, append([]byte(nil), parity...), 40, 2, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	checkRecovered(t, recs[0], pkts[2])
	if _, _, _, ok := e.Flush(); ok {
		t.Fatal("second Flush reported an open group")
	}
}

func TestHoleOpenAt(t *testing.T) {
	e := NewEncoder(XOR{}, 4)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(60, 4)
	base, span, parity := encodeGroup(t, e, pkts)

	var recs []Recovered
	// pkts[1] lost; later members arrive at t=50,60, earlier at t=40.
	recs = d.OnData(pkts[0].seq, pkts[0].flags, pkts[0].msgID, pkts[0].frag, pkts[0].fragCnt, pkts[0].attrs, pkts[0].payload, 40, recs)
	recs = d.OnData(pkts[2].seq, pkts[2].flags, pkts[2].msgID, pkts[2].frag, pkts[2].fragCnt, pkts[2].attrs, pkts[2].payload, 50, recs)
	recs = d.OnData(pkts[3].seq, pkts[3].flags, pkts[3].msgID, pkts[3].frag, pkts[3].fragCnt, pkts[3].attrs, pkts[3].payload, 60, recs)
	recs = d.OnRepair(base, span, parity, 61, 90, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	// The hole after seq 61 became observable when seq 62 arrived at t=50.
	if recs[0].HoleOpenAt != 50 {
		t.Errorf("HoleOpenAt = %d, want 50", recs[0].HoleOpenAt)
	}
}

func TestGroupEvictionBound(t *testing.T) {
	e := NewEncoder(XOR{}, 2)
	d := NewDecoder(XOR{}, 0)
	// Park far more unrecoverable groups (both members missing, above
	// rcvNxt) than the bound allows.
	for i := 0; i < 3*groupsMax; i++ {
		base := uint32(1000 + 2*i)
		pkts := mkPkts(base, 2)
		_, span, parity := encodeGroup(t, e, pkts)
		if recs := d.OnRepair(base, span, parity, 1000, 1, nil); len(recs) != 0 {
			t.Fatalf("recovered from empty group %d", i)
		}
	}
	if len(d.groups) > groupsMax {
		t.Fatalf("parked %d groups, bound is %d", len(d.groups), groupsMax)
	}
}

func TestDuplicateRepairIgnored(t *testing.T) {
	e := NewEncoder(XOR{}, 2)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(80, 2)
	base, span, parity := encodeGroup(t, e, pkts)
	var recs []Recovered
	recs = d.OnRepair(base, span, parity, 80, 1, recs)
	recs = d.OnRepair(base, span, parity, 80, 2, recs)
	if len(recs) != 0 || len(d.groups) != 1 {
		t.Fatalf("duplicate repair mishandled: %d recs, %d groups", len(recs), len(d.groups))
	}
	// One member arrives, leaving a single hole: the parked group closes.
	recs = d.OnData(pkts[0].seq, pkts[0].flags, pkts[0].msgID, pkts[0].frag, pkts[0].fragCnt, pkts[0].attrs, pkts[0].payload, 3, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	checkRecovered(t, recs[0], pkts[1])
}

func TestSpanWrapAround(t *testing.T) {
	// Group straddling the uint32 sequence wrap.
	e := NewEncoder(XOR{}, 4)
	d := NewDecoder(XOR{}, 0)
	pkts := mkPkts(0xFFFFFFFE, 4) // seqs fffffffe, ffffffff, 0, 1
	base, span, parity := encodeGroup(t, e, pkts)
	if base != 0xFFFFFFFE || span != 4 {
		t.Fatalf("group = (%#x,%d)", base, span)
	}
	var recs []Recovered
	for i, p := range pkts {
		if p.seq == 0 {
			continue
		}
		recs = d.OnData(p.seq, p.flags, p.msgID, p.frag, p.fragCnt, p.attrs, p.payload, time.Duration(i), recs)
	}
	recs = d.OnRepair(base, span, parity, 0xFFFFFFFE, 10, recs)
	if len(recs) != 1 {
		t.Fatalf("got %d recoveries, want 1", len(recs))
	}
	checkRecovered(t, recs[0], pkts[2])
}

func TestBadRepairRejected(t *testing.T) {
	d := NewDecoder(XOR{}, 0)
	if recs := d.OnRepair(0, 0, make([]byte, 64), 0, 1, nil); len(recs) != 0 || len(d.groups) != 0 {
		t.Error("zero-span repair accepted")
	}
	if recs := d.OnRepair(0, GroupMax+1, make([]byte, 64), 0, 1, nil); len(recs) != 0 || len(d.groups) != 0 {
		t.Error("oversized-span repair accepted")
	}
	if recs := d.OnRepair(0, 2, []byte{1, 2}, 0, 1, nil); len(recs) != 0 || len(d.groups) != 0 {
		t.Error("runt parity accepted")
	}
}
