package fec

import (
	"math/bits"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/packet"
)

// HistoryDefault is the default size of the decoder's unit-history ring.
// It must comfortably exceed the peer's flight window so every live group
// member is still on hand when its repair packet arrives.
const HistoryDefault = 256

// groupsMax bounds the parked repair groups awaiting a second chance (a
// retransmission or reordered arrival closing all but one hole). Oldest is
// evicted first; a group parked this long is almost always already dead to
// the retransmission path anyway.
const groupsMax = 8

// slot is one remembered data packet, re-framed as a parity unit.
type slot struct {
	seq   uint32
	valid bool
	at    time.Duration // arrival time (receiver clock)
	buf   []byte        // encoded unit, storage reused across occupants
}

// group is a parked repair whose span had two or more holes on arrival.
type group struct {
	base    uint32
	span    int
	present uint64 // bit i set: unit base+i folded into acc
	acc     []byte // parity folded with every present unit
	at      time.Duration
}

// Decoder reconstructs lost DATA packets from REPAIR parity on the receive
// path. It is not safe for concurrent use; the machine drives it from its
// serialisation context.
type Decoder struct {
	c       Codec
	slots   []slot
	groups  []group
	unit    []byte // staging scratch for OnData
	accFree []byte // one-deep accumulator freelist
}

// NewDecoder builds a decoder remembering the last history data packets
// (0 means HistoryDefault).
func NewDecoder(c Codec, history int) *Decoder {
	if history <= 0 {
		history = HistoryDefault
	}
	return &Decoder{c: c, slots: make([]slot, history)}
}

// OnData records one arriving DATA packet (every arrival: in-order,
// duplicate or out-of-order — duplicates are how retransmissions refill a
// parked group) and folds it into any parked group covering it. Closed
// groups' reconstructions are appended to recs.
func (d *Decoder) OnData(seq uint32, flags uint8, msgID uint32, frag, fragCnt uint16, attrs *attr.List, payload []byte, now time.Duration, recs []Recovered) []Recovered {
	unit, err := appendUnit(d.unit[:0], flags, msgID, frag, fragCnt, attrs, payload)
	if err != nil {
		return recs
	}
	d.unit = unit

	s := &d.slots[seq%uint32(len(d.slots))]
	s.seq = seq
	s.valid = true
	s.at = now
	s.buf = append(s.buf[:0], unit...)

	for i := 0; i < len(d.groups); {
		g := &d.groups[i]
		off := seq - g.base
		if off >= uint32(g.span) || g.present&(1<<off) != 0 {
			i++
			continue
		}
		g.acc = d.c.Fold(g.acc, unit, int(off))
		g.present |= 1 << off
		if bits.OnesCount64(g.present) == g.span-1 {
			recs = d.close(g, now, recs)
			d.drop(i)
			continue
		}
		i++
	}
	return recs
}

// OnRepair handles an arriving REPAIR packet covering [base, base+span).
// rcvNxt is the receiver's next in-order sequence number: members below it
// that have aged out of the history ring are already delivered, and a group
// missing one of those can never be closed, so it is dropped rather than
// parked. Reconstructions are appended to recs.
func (d *Decoder) OnRepair(base uint32, span int, parity []byte, rcvNxt uint32, now time.Duration, recs []Recovered) []Recovered {
	if span <= 0 || span > GroupMax || len(parity) < unitHeader {
		return recs
	}
	for i := range d.groups {
		if d.groups[i].base == base {
			return recs // duplicate repair
		}
	}

	g := group{base: base, span: span, at: now}
	g.acc = append(d.takeAcc(), parity...)
	dead := false
	for i := 0; i < span; i++ {
		seq := base + uint32(i)
		if s := &d.slots[seq%uint32(len(d.slots))]; s.valid && s.seq == seq {
			g.acc = d.c.Fold(g.acc, s.buf, i)
			g.present |= 1 << i
		} else if packet.SeqLT(seq, rcvNxt) {
			// Delivered but aged out of the ring: unfoldable forever.
			dead = true
			break
		}
	}
	missing := span - bits.OnesCount64(g.present)
	if dead || missing == 0 {
		d.giveAcc(g.acc)
		return recs
	}
	if missing == 1 {
		return d.close(&g, now, recs)
	}
	if len(d.groups) >= groupsMax {
		d.giveAcc(d.groups[0].acc)
		d.groups = append(d.groups[:0], d.groups[1:]...)
	}
	d.groups = append(d.groups, g)
	return recs
}

// close reconstructs g's single missing unit and appends it to recs. It
// consumes g.acc either way: the storage transfers into the Recovered value
// (whose Attrs/Payload alias it) or returns to the freelist on a parse
// failure, and g.acc is nilled so the caller's removal cannot recycle a
// buffer the Recovered still references.
func (d *Decoder) close(g *group, now time.Duration, recs []Recovered) []Recovered {
	acc := g.acc
	g.acc = nil
	idx := bits.TrailingZeros64(^g.present)
	if idx >= g.span {
		d.giveAcc(acc)
		return recs
	}
	seq := g.base + uint32(idx)
	var r Recovered
	if !parseUnit(d.c.Reconstruct(acc, idx), seq, &r) {
		d.giveAcc(acc)
		return recs
	}
	r.HoleOpenAt = d.holeOpenAt(g, seq, now)
	return append(recs, r)
}

// holeOpenAt finds when the hole at seq became observable: the earliest
// arrival among the group's still-remembered later members, bounded by the
// repair packet's own arrival.
func (d *Decoder) holeOpenAt(g *group, seq uint32, now time.Duration) time.Duration {
	open := g.at
	if open == 0 || open > now {
		open = now
	}
	for i := 0; i < g.span; i++ {
		m := g.base + uint32(i)
		if !packet.SeqGT(m, seq) {
			continue
		}
		if s := &d.slots[m%uint32(len(d.slots))]; s.valid && s.seq == m && s.at < open {
			open = s.at
		}
	}
	return open
}

// drop removes the parked group at index i, recycling its accumulator.
func (d *Decoder) drop(i int) {
	d.giveAcc(d.groups[i].acc)
	d.groups = append(d.groups[:i], d.groups[i+1:]...)
}

// accFree is a one-deep accumulator freelist: groups churn one at a time in
// the common case, and reconstruction hands its buffer away.
func (d *Decoder) takeAcc() []byte {
	if d.accFree != nil {
		b := d.accFree[:0]
		d.accFree = nil
		return b
	}
	return nil
}

func (d *Decoder) giveAcc(b []byte) {
	if b != nil {
		d.accFree = b
	}
}
