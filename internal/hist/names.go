package hist

import "time"

// The histogram metric names form a closed vocabulary, like the trace
// Reason*/Kind* constants: the Prometheus series name, the expvar key, the
// flight-record summary name and the introspection JSON all match by exact
// string, so a misspelled name silently forks the series. Each name is
// declared once here as a Metric* constant; the tracekeys analyzer
// (internal/analysis/tracekeys) harvests this set and rejects raw string
// literals at use sites.
const (
	// MetricRTT is the per-sample round-trip time (core, sender side).
	MetricRTT = "rtt_seconds"
	// MetricDelivery is send→deliver latency of marked messages (core,
	// receiver side; sender timestamp, so meaningful when clocks agree —
	// exact under the simulator, skew-bounded over real sockets).
	MetricDelivery = "delivery_latency_seconds"
	// MetricAckDelay is the send→acknowledgement delay per packet (core,
	// sender side; single clock, includes retransmission waits).
	MetricAckDelay = "ack_delay_seconds"
	// MetricBacklog is the send-backlog depth sampled at each SendMsg
	// (core, sender side; packets queued but not yet transmitted).
	MetricBacklog = "send_backlog_packets"
	// MetricRxBatch is the datagrams-per-batched-read distribution
	// (serve, per shard).
	MetricRxBatch = "rx_batch_size"
	// MetricDispatch is the decode+route latency of one receive batch
	// (serve, per shard).
	MetricDispatch = "dispatch_latency_seconds"
	// MetricFecRepair is the hole-open→reconstruction latency of packets
	// recovered by the FEC repair layer (core, receiver side; single clock:
	// measured from the repair group's first out-of-order arrival).
	MetricFecRepair = "fec_repair_latency_seconds"
	// MetricWheelLateness is how far past its deadline each timing-wheel
	// callback was dispatched (serve, per shard; bounded by ~2 wheel ticks
	// plus scheduler noise when healthy).
	MetricWheelLateness = "wheel_lateness_seconds"
)

// Metrics lists every registered histogram metric name.
func Metrics() []string {
	return []string{
		MetricRTT,
		MetricDelivery,
		MetricAckDelay,
		MetricBacklog,
		MetricRxBatch,
		MetricDispatch,
		MetricFecRepair,
		MetricWheelLateness,
	}
}

// Standard maximums. Latencies saturate at one minute (anything beyond is
// a pathology the overflow bucket records); depth/batch maxima comfortably
// exceed the transport's configured ceilings.
const (
	maxLatency = uint64(time.Minute)
	maxDepth   = 1 << 20
	maxBatch   = 1 << 12
)

// NewLatency returns a Seconds histogram for one of the latency metrics.
func NewLatency(name string) *Hist { return New(name, Seconds, maxLatency) }

// NewDepth returns a Count histogram for queue-depth metrics.
func NewDepth(name string) *Hist { return New(name, Count, maxDepth) }

// NewBatch returns a Count histogram for batch-size metrics.
func NewBatch(name string) *Hist { return New(name, Count, maxBatch) }
