package hist

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/stats"
)

// TestBucketIndexContiguous proves the log-linear index is monotone and
// gap-free: walking v upward never skips or revisits a bucket, and the
// low/high inverses agree with the forward map.
func TestBucketIndexContiguous(t *testing.T) {
	prev := -1
	for v := uint64(0); v < 1<<16; v++ {
		idx := bucketIndex(v)
		if idx != prev && idx != prev+1 {
			t.Fatalf("bucketIndex(%d) = %d, previous %d: not contiguous", v, idx, prev)
		}
		if v < bucketLow(idx) || v > bucketHigh(idx) {
			t.Fatalf("v=%d outside its bucket %d range [%d,%d]", v, idx, bucketLow(idx), bucketHigh(idx))
		}
		prev = idx
	}
	// Spot-check bucket width: relative width must stay ≤ 12.5%.
	for _, v := range []uint64{16, 100, 1e4, 1e7, 1e10, 1e13} {
		idx := bucketIndex(v)
		lo, hi := bucketLow(idx), bucketHigh(idx)
		if w := float64(hi-lo+1) / float64(lo); w > 0.125+1e-9 {
			t.Errorf("bucket %d ([%d,%d]) relative width %.4f > 12.5%%", idx, lo, hi, w)
		}
	}
}

// TestQuantileErrorBound drives random workloads through a histogram and
// an exact oracle (stats.Sample) and asserts the recorded quantiles stay
// within the log-linear layout's error bound (12.5% bucket width, plus a
// little slack for rank interpolation differences).
func TestQuantileErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	workloads := []struct {
		name string
		gen  func() int64
	}{
		{"uniform", func() int64 { return rng.Int63n(1_000_000) }},
		{"exponential", func() int64 { return int64(rng.ExpFloat64() * 50_000) }},
		{"lognormal", func() int64 { return int64(math.Exp(rng.NormFloat64()*2 + 10)) }},
		{"bimodal", func() int64 {
			if rng.Intn(10) == 0 {
				return 5_000_000 + rng.Int63n(100_000)
			}
			return 1_000 + rng.Int63n(500)
		}},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			h := New(MetricRTT, Seconds, uint64(time.Minute))
			var exact stats.Sample
			for i := 0; i < 20_000; i++ {
				v := w.gen()
				h.Record(v)
				exact.Add(float64(v))
			}
			s := h.Snapshot()
			if s.Count != uint64(exact.N()) {
				t.Fatalf("count %d, want %d", s.Count, exact.N())
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				got, want := s.Quantile(q), exact.Quantile(q)
				rel := math.Abs(got-want) / math.Max(want, 1)
				if rel > 0.13 && math.Abs(got-want) > 2 {
					t.Errorf("q=%g: hist %.1f vs exact %.1f (rel err %.4f > 13%%)", q, got, want, rel)
				}
			}
			if got, want := s.Mean(), exact.Mean(); math.Abs(got-want) > math.Max(want, 1)*0.001+1 {
				t.Errorf("mean %.2f vs exact %.2f", got, want)
			}
		})
	}
}

// TestRecordEdgeCases covers clamping: negatives go to zero, values above
// the configured max land in the overflow bucket with a clamped sum.
func TestRecordEdgeCases(t *testing.T) {
	h := New(MetricBacklog, Count, 1000)
	h.Record(-5)
	h.Record(0)
	h.Record(1 << 40) // far above max
	s := h.Snapshot()
	if s.Counts[0] != 2 {
		t.Errorf("zero bucket = %d, want 2 (negative clamps to 0)", s.Counts[0])
	}
	if over := s.Counts[len(s.Counts)-1]; over != 1 {
		t.Errorf("overflow bucket = %d, want 1", over)
	}
	if s.Sum != 1000 {
		t.Errorf("sum = %d, want 1000 (overflow clamps sum to max)", s.Sum)
	}
	if s.Upper(len(s.Counts)-1) != math.MaxUint64 {
		t.Errorf("overflow upper bound should be MaxUint64")
	}
	if q := s.Quantile(1); q != 1000 {
		t.Errorf("p100 with overflow = %g, want clamp to 1000", q)
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines while a
// reader snapshots it — the race detector validates the lock-free claim,
// and the final count must be exact.
func TestConcurrentRecord(t *testing.T) {
	const (
		workers = 8
		perW    = 10_000
	)
	h := NewLatency(MetricAckDelay)
	done := make(chan struct{})
	go func() { // concurrent reader
		for {
			select {
			case <-done:
				return
			default:
				s := h.Snapshot()
				if s.Count > workers*perW {
					panic("snapshot overcounted")
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				h.Record(rng.Int63n(1_000_000))
			}
		}(int64(w))
	}
	wg.Wait()
	close(done)
	if s := h.Snapshot(); s.Count != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count, workers*perW)
	}
}

// TestMergeByName checks that same-metric snapshots add and distinct
// metrics stay separate, sorted by name.
func TestMergeByName(t *testing.T) {
	a, b := NewLatency(MetricRTT), NewLatency(MetricRTT)
	c := NewBatch(MetricRxBatch)
	for i := int64(0); i < 100; i++ {
		a.Record(i * 100)
		b.Record(i * 200)
		c.Record(i % 32)
	}
	merged := MergeByName([]Snapshot{a.Snapshot(), c.Snapshot(), b.Snapshot()})
	if len(merged) != 2 {
		t.Fatalf("merged %d metrics, want 2", len(merged))
	}
	if merged[0].Name != MetricRTT || merged[1].Name != MetricRxBatch {
		t.Fatalf("merge order %q, %q: want sorted by name", merged[0].Name, merged[1].Name)
	}
	if merged[0].Count != 200 {
		t.Errorf("merged rtt count = %d, want 200", merged[0].Count)
	}
	wantSum := a.Snapshot().Sum + b.Snapshot().Sum
	if merged[0].Sum != wantSum {
		t.Errorf("merged rtt sum = %d, want %d", merged[0].Sum, wantSum)
	}
	// Merge must not alias the source slices.
	before := merged[0].Counts[bucketIndex(100)]
	a.Record(100)
	if merged[0].Counts[bucketIndex(100)] != before {
		t.Error("merged snapshot aliases live histogram storage")
	}
}

// TestSummaryUnits checks unit scaling: Seconds histograms record
// nanoseconds and summarise in seconds.
func TestSummaryUnits(t *testing.T) {
	h := NewLatency(MetricDelivery)
	for i := 0; i < 1000; i++ {
		h.RecordDur(100 * time.Millisecond)
	}
	sum := h.Snapshot().Summary()
	if sum.Name != MetricDelivery || sum.Unit != "seconds" || sum.Count != 1000 {
		t.Fatalf("summary header: %+v", sum)
	}
	if sum.P50 < 0.09 || sum.P50 > 0.12 {
		t.Errorf("p50 = %g s, want ≈0.1 s", sum.P50)
	}
	if sum.Mean < 0.09 || sum.Mean > 0.12 {
		t.Errorf("mean = %g s, want ≈0.1 s", sum.Mean)
	}
}

// TestRecordAllocs locks the zero-allocation hot-path claim.
func TestRecordAllocs(t *testing.T) {
	h := NewLatency(MetricRTT)
	if n := testing.AllocsPerRun(1000, func() { h.Record(12345) }); n != 0 {
		t.Fatalf("Record allocates %v times per op, want 0", n)
	}
}
