// Package hist provides the fixed-size, log-bucketed, atomic histograms
// behind the transport's distribution metrics (RTT, delivery latency, queue
// depth, batch size). The design goals, in order:
//
//  1. Zero-allocation, lock-free Record on the hot path: two atomic adds,
//     no branches that can allocate, safe from any goroutine.
//  2. Bounded, predictable memory: bucket boundaries are a pure function of
//     the configured maximum, laid out log-linearly (HDR-style) so relative
//     bucket width never exceeds 12.5%.
//  3. Mergeable snapshots: per-connection and per-shard histograms of the
//     same metric merge by simple vector addition, so the exporter can
//     present one fleet-wide distribution.
//
// Bucket layout: values below 16 map to their own bucket (exact); above
// that, each power-of-two octave is split into 8 linear sub-buckets
// (subBits = 3), i.e. bucket index
//
//	idx = ((exp-3) << 3) + ((v >> (exp-3)) & 7) + 8    where exp = floor(log2 v)
//
// which is contiguous across octaves and gives ≤ 2^(exp-3)-wide buckets —
// a worst-case relative quantile error of 12.5%. Values above the
// configured maximum land in a final overflow bucket (and are clamped in
// the sum), so the array never grows.
package hist

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// subBits is the number of linear sub-bucket bits per power-of-two octave.
const subBits = 3

// Unit describes how recorded raw values translate to exported numbers.
type Unit uint8

const (
	// Count exports raw recorded values unscaled (packets, messages, ...).
	Count Unit = iota
	// Seconds records nanoseconds and exports seconds (÷1e9).
	Seconds
)

// Scale returns the factor converting a raw recorded value into the
// exported unit.
func (u Unit) Scale() float64 {
	if u == Seconds {
		return 1e-9
	}
	return 1
}

func (u Unit) String() string {
	if u == Seconds {
		return "seconds"
	}
	return "count"
}

// bucketIndex maps a raw value onto its log-linear bucket.
func bucketIndex(v uint64) int {
	if v < 1<<(subBits+1) {
		return int(v) // identity region: exact buckets 0..15
	}
	exp := bits.Len64(v) - 1 // position of the top set bit, ≥ subBits+1
	return ((exp - subBits) << subBits) + int((v>>(exp-subBits))&(1<<subBits-1)) + (1 << subBits)
}

// bucketLow returns the smallest raw value mapping to bucket idx.
func bucketLow(idx int) uint64 {
	if idx < 1<<(subBits+1) {
		return uint64(idx)
	}
	shift := uint((idx - 1<<subBits) >> subBits)
	k := uint64((idx - 1<<subBits) & (1<<subBits - 1))
	return (1<<subBits + k) << shift
}

// bucketHigh returns the largest raw value mapping to bucket idx.
func bucketHigh(idx int) uint64 {
	if idx < 1<<(subBits+1) {
		return uint64(idx)
	}
	shift := uint((idx - 1<<subBits) >> subBits)
	return bucketLow(idx) + 1<<shift - 1
}

// Hist is a lock-free log-bucketed histogram. Record never allocates and
// may be called concurrently from any goroutine; Snapshot may race with
// recording and returns a self-consistent-enough view (counts and sum are
// read with atomics, so each is exact at some instant).
type Hist struct {
	name   string
	unit   Unit
	limit  uint64 // largest value recorded exactly; above → overflow bucket
	sum    atomic.Uint64
	counts []atomic.Uint64
}

// New returns a histogram for metric name (one of the Metric* constants)
// covering [0, max] with an overflow bucket above. A max of 0 selects a
// one-bucket degenerate histogram; callers should use the New*Hist
// constructors for the standard metrics.
func New(name string, unit Unit, max uint64) *Hist {
	n := bucketIndex(max) + 2 // + last in-range bucket, + overflow
	return &Hist{
		name:   name,
		unit:   unit,
		limit:  max,
		counts: make([]atomic.Uint64, n),
	}
}

// Name returns the metric name this histogram records.
func (h *Hist) Name() string { return h.name }

// Record adds one observation of raw value v (nanoseconds for Seconds
// histograms). Negative values clamp to zero; values above the configured
// maximum land in the overflow bucket. Zero allocations, two atomic adds.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	uv := uint64(v)
	idx := bucketIndex(uv)
	if idx >= len(h.counts)-1 {
		idx = len(h.counts) - 1
		uv = h.limit
	}
	h.counts[idx].Add(1)
	h.sum.Add(uv)
}

// RecordDur records a duration on a Seconds histogram.
func (h *Hist) RecordDur(d time.Duration) { h.Record(int64(d)) }

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() Snapshot {
	s := Snapshot{
		Name:   h.name,
		Unit:   h.unit,
		Limit:  h.limit,
		Sum:    h.sum.Load(),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Snapshot is a point-in-time copy of a histogram, mergeable with other
// snapshots of the same metric and serialisable to JSON.
type Snapshot struct {
	Name   string   `json:"name"`
	Unit   Unit     `json:"unit"`
	Limit  uint64   `json:"limit"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Counts []uint64 `json:"counts"`
}

// Merge adds other into s. Snapshots merge only when they describe the
// same metric with the same bucket layout; a mismatch is ignored (the
// caller grouped by name, so this only happens across version skew).
func (s *Snapshot) Merge(other Snapshot) {
	if s.Name != other.Name || s.Unit != other.Unit || len(s.Counts) != len(other.Counts) {
		return
	}
	s.Count += other.Count
	s.Sum += other.Sum
	for i, c := range other.Counts {
		s.Counts[i] += c
	}
}

// Upper returns the inclusive upper bound of bucket i in raw units; the
// overflow bucket reports MaxUint64 (rendered as +Inf).
func (s Snapshot) Upper(i int) uint64 {
	if i == len(s.Counts)-1 {
		return math.MaxUint64
	}
	return bucketHigh(i)
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) in raw units, linearly
// interpolated within the containing bucket. Returns 0 for an empty
// snapshot. Worst-case relative error is the bucket width, 12.5%.
func (s Snapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count-1)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		fc := float64(c)
		if rank < cum+fc {
			low, high := float64(bucketLow(i)), float64(bucketHigh(i))
			if i == len(s.Counts)-1 {
				return float64(s.Limit) // overflow: all we know is "≥ limit"
			}
			frac := (rank - cum) / fc
			return low + frac*(high-low)
		}
		cum += fc
	}
	return float64(s.Limit)
}

// Mean returns the arithmetic mean in raw units (0 when empty).
func (s Snapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Summary condenses a snapshot into the key quantiles in exported units
// (seconds for latency histograms) — the form carried by flight records
// and the introspection endpoint.
type Summary struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Summary computes the snapshot's summary in exported units.
func (s Snapshot) Summary() Summary {
	k := s.Unit.Scale()
	return Summary{
		Name:  s.Name,
		Unit:  s.Unit.String(),
		Count: s.Count,
		Mean:  s.Mean() * k,
		P50:   s.Quantile(0.50) * k,
		P90:   s.Quantile(0.90) * k,
		P99:   s.Quantile(0.99) * k,
		P999:  s.Quantile(0.999) * k,
	}
}

// MergeByName groups snapshots by metric name, merging duplicates, and
// returns them sorted by name — the exporter's scrape-time view over any
// number of per-connection and per-shard sources.
func MergeByName(snaps []Snapshot) []Snapshot {
	byName := make(map[string]int, len(snaps))
	var out []Snapshot
	for _, s := range snaps {
		if i, ok := byName[s.Name]; ok {
			out[i].Merge(s)
			continue
		}
		c := s
		c.Counts = append([]uint64(nil), s.Counts...)
		byName[s.Name] = len(out)
		out = append(out, c)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Name < out[j-1].Name; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
