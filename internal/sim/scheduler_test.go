package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestSchedulerOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30*time.Millisecond, func() { got = append(got, 3) })
	s.At(10*time.Millisecond, func() { got = append(got, 1) })
	s.At(20*time.Millisecond, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("execution order = %v, want %v", got, want)
	}
	if s.Now() != 30*time.Millisecond {
		t.Fatalf("final time = %v, want 30ms", s.Now())
	}
}

func TestSchedulerTieBreakIsInsertionOrder(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(time.Second, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order = %v, want ascending insertion order", got)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	s := New(1)
	s.At(time.Second, func() {})
	s.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling into the past did not panic")
		}
	}()
	s.At(time.Millisecond, func() {})
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	s := New(1)
	fired := false
	s.After(-time.Second, func() { fired = true })
	s.Run()
	if !fired {
		t.Fatal("negative After never fired")
	}
	if s.Now() != 0 {
		t.Fatalf("clock moved to %v for clamped event", s.Now())
	}
}

func TestTimerStop(t *testing.T) {
	s := New(1)
	fired := false
	tm := s.After(time.Second, func() { fired = true })
	if !tm.Pending() {
		t.Fatal("timer should be pending before Run")
	}
	if !tm.Stop() {
		t.Fatal("Stop on pending timer should report true")
	}
	if tm.Stop() {
		t.Fatal("second Stop should report false")
	}
	s.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if tm.Pending() {
		t.Fatal("stopped timer still pending")
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	s := New(1)
	tm := s.After(time.Millisecond, func() {})
	s.Run()
	if tm.Pending() {
		t.Fatal("fired timer reports pending")
	}
	if tm.Stop() {
		t.Fatal("Stop after fire should report false")
	}
}

func TestRunUntilAdvancesClock(t *testing.T) {
	s := New(1)
	var fired []time.Duration
	for _, d := range []time.Duration{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		s.At(d, func() { fired = append(fired, d) })
	}
	s.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 3*time.Second {
		t.Fatalf("clock = %v, want 3s", s.Now())
	}
	s.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events after second RunUntil, want 3", len(fired))
	}
}

func TestHaltAndResume(t *testing.T) {
	s := New(1)
	count := 0
	for i := 1; i <= 5; i++ {
		s.At(time.Duration(i)*time.Second, func() {
			count++
			if count == 2 {
				s.Halt()
			}
		})
	}
	s.Run()
	if count != 2 {
		t.Fatalf("count = %d after Halt, want 2", count)
	}
	if !s.Halted() {
		t.Fatal("scheduler should report halted")
	}
	s.Resume()
	s.Run()
	if count != 5 {
		t.Fatalf("count = %d after Resume+Run, want 5", count)
	}
}

func TestNestedScheduling(t *testing.T) {
	s := New(1)
	depth := 0
	var rec func()
	rec = func() {
		depth++
		if depth < 100 {
			s.After(time.Millisecond, rec)
		}
	}
	s.After(time.Millisecond, rec)
	s.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if s.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v, want 100ms", s.Now())
	}
}

func TestDeterministicRand(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Rand().Int63() != b.Rand().Int63() {
			t.Fatal("same seed produced diverging random streams")
		}
	}
}

// Property: for any batch of events with arbitrary times, execution order is
// the stable sort of (time, insertion index), and the clock is monotone.
func TestQuickEventOrderIsStableSort(t *testing.T) {
	f := func(delays []uint16) bool {
		s := New(7)
		type rec struct {
			at  time.Duration
			idx int
		}
		var want []rec
		var got []rec
		for i, d := range delays {
			at := time.Duration(d) * time.Microsecond
			want = append(want, rec{at, i})
			i := i
			s.At(at, func() {
				if s.Now() != at {
					t.Errorf("clock %v != event time %v", s.Now(), at)
				}
				got = append(got, rec{at, i})
			})
		}
		sort.SliceStable(want, func(i, j int) bool { return want[i].at < want[j].at })
		s.Run()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling a random subset of timers fires exactly the complement.
func TestQuickStopFiresComplement(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%64) + 1
		s := New(3)
		fired := make([]bool, count)
		timers := make([]*Timer, count)
		for i := 0; i < count; i++ {
			i := i
			timers[i] = s.At(time.Duration(i)*time.Millisecond, func() { fired[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				timers[i].Stop()
			}
		}
		s.Run()
		for i := 0; i < count; i++ {
			stopped := mask&(1<<uint(i)) != 0
			if fired[i] == stopped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTickerBasic(t *testing.T) {
	s := New(1)
	n := 0
	tk := NewTicker(s, 10*time.Millisecond, func() { n++ })
	s.RunUntil(95 * time.Millisecond)
	if n != 9 {
		t.Fatalf("ticks = %d, want 9", n)
	}
	tk.Stop()
	s.RunUntil(time.Second)
	if n != 9 {
		t.Fatalf("ticker fired after Stop: %d", n)
	}
	if tk.Ticks() != 9 {
		t.Fatalf("Ticks() = %d, want 9", tk.Ticks())
	}
}

func TestTickerStopInsideCallback(t *testing.T) {
	s := New(1)
	n := 0
	var tk *Ticker
	tk = NewTicker(s, time.Millisecond, func() {
		n++
		if n == 3 {
			tk.Stop()
		}
	})
	s.Run()
	if n != 3 {
		t.Fatalf("ticks = %d, want 3", n)
	}
}

func TestTickerReset(t *testing.T) {
	s := New(1)
	var at []time.Duration
	tk := NewTicker(s, 10*time.Millisecond, func() { at = append(at, s.Now()) })
	s.RunUntil(10 * time.Millisecond)
	tk.Reset(20 * time.Millisecond)
	s.RunUntil(50 * time.Millisecond)
	tk.Stop()
	want := []time.Duration{10 * time.Millisecond, 30 * time.Millisecond, 50 * time.Millisecond}
	if len(at) != len(want) {
		t.Fatalf("tick times = %v, want %v", at, want)
	}
	for i := range at {
		if at[i] != want[i] {
			t.Fatalf("tick times = %v, want %v", at, want)
		}
	}
}

func TestTickerPanicsOnBadPeriod(t *testing.T) {
	s := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period did not panic")
		}
	}()
	NewTicker(s, 0, func() {})
}

func TestStopNilTimer(t *testing.T) {
	var tm *Timer
	if tm.Stop() {
		t.Fatal("nil timer Stop returned true")
	}
	if tm.Pending() {
		t.Fatal("nil timer Pending returned true")
	}
}

func BenchmarkSchedulerChurn(b *testing.B) {
	s := New(1)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.After(time.Duration(rng.Intn(1000))*time.Microsecond, func() {})
		if s.Len() > 1024 {
			for j := 0; j < 512; j++ {
				s.Step()
			}
		}
	}
	s.Run()
}
