package sim

import "time"

// Ticker repeatedly invokes a function at a fixed virtual-time period until
// stopped. It is the building block for rate-based traffic sources and for
// the transport's periodic measurement machinery.
type Ticker struct {
	s      *Scheduler
	period time.Duration
	fn     func()
	timer  *Timer
	stop   bool
	ticks  uint64
}

// NewTicker schedules fn every period, with the first tick one period from
// now. It panics on a non-positive period.
func NewTicker(s *Scheduler, period time.Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t := &Ticker{s: s, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.timer = t.s.After(t.period, func() {
		if t.stop {
			return
		}
		t.ticks++
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop permanently disables the ticker.
func (t *Ticker) Stop() {
	t.stop = true
	if t.timer != nil {
		t.timer.Stop()
	}
}

// Ticks returns the number of times the callback has run.
func (t *Ticker) Ticks() uint64 { return t.ticks }

// Reset changes the period and re-arms the next tick to fire one new period
// from now, like time.Ticker.Reset. A ticker that was stopped stays stopped.
func (t *Ticker) Reset(period time.Duration) {
	if period <= 0 {
		panic("sim: ticker period must be positive")
	}
	t.period = period
	if t.stop {
		return
	}
	if t.timer != nil {
		t.timer.Stop()
	}
	t.arm()
}
