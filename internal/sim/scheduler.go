// Package sim provides a deterministic discrete-event scheduler with a
// virtual clock. It is the execution substrate for the network emulator and
// for every experiment in this repository: all protocol endpoints, links and
// traffic sources run as event handlers on a single Scheduler, so a run is a
// pure function of its configuration and seed.
//
// Determinism rules:
//   - events scheduled for the same instant fire in scheduling order;
//   - handlers must not consult wall-clock time or shared mutable state
//     outside the scheduler;
//   - randomness comes from the per-run *rand.Rand exposed by the scheduler.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is an instant of virtual time, measured as an offset from the start of
// the run. The zero Time is the beginning of the simulation.
type Time = time.Duration

// Event is a scheduled callback. It is owned by the Scheduler; user code
// holds a *Timer handle instead.
type event struct {
	at   Time
	seq  uint64 // insertion order, breaks ties deterministically
	fn   func()
	dead bool // cancelled
	idx  int  // heap index, -1 when popped
}

// Timer is a handle to a scheduled event that can be cancelled or queried.
type Timer struct {
	ev *event
}

// Stop cancels the timer. It reports whether the timer was still pending
// (i.e. the call prevented the event from firing). Stopping an already-fired
// or already-stopped timer is a harmless no-op returning false.
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.dead || t.ev.idx < 0 {
		return false
	}
	t.ev.dead = true
	return true
}

// Pending reports whether the timer has neither fired nor been stopped.
func (t *Timer) Pending() bool {
	return t != nil && t.ev != nil && !t.ev.dead && t.ev.idx >= 0
}

// When returns the virtual time the timer is (or was) set to fire at.
func (t *Timer) When() Time {
	if t == nil || t.ev == nil {
		return 0
	}
	return t.ev.at
}

// Scheduler is a discrete-event executor with a virtual clock.
// The zero value is not usable; call New.
type Scheduler struct {
	now    Time
	seq    uint64
	queue  eventHeap
	rng    *rand.Rand
	fired  uint64
	halted bool
}

// New returns a Scheduler whose random source is seeded with seed.
func New(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Rand returns the per-run deterministic random source.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Fired returns the number of events executed so far (useful in tests and as
// a progress/complexity metric).
func (s *Scheduler) Fired() uint64 { return s.fired }

// Len returns the number of pending events, including cancelled ones that
// have not yet been reaped.
func (s *Scheduler) Len() int { return s.queue.Len() }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it always indicates a protocol bug, and silently clamping would
// mask it.
func (s *Scheduler) At(t Time, fn func()) *Timer {
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling into the past: at %v, now %v", t, s.now))
	}
	ev := &event{at: t, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current virtual time. Negative d is
// treated as zero.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to its time.
// It reports whether an event was executed (false when the queue is empty or
// the scheduler is halted).
func (s *Scheduler) Step() bool {
	if s.halted {
		return false
	}
	for s.queue.Len() > 0 {
		ev := heap.Pop(&s.queue).(*event)
		if ev.dead {
			continue
		}
		s.now = ev.at
		s.fired++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty or Halt is called.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time ≤ deadline, then advances the clock to
// the deadline (even if the queue still holds later events).
func (s *Scheduler) RunUntil(deadline Time) {
	for !s.halted {
		next, ok := s.peek()
		if !ok || next > deadline {
			break
		}
		s.Step()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Halt stops Run/RunUntil after the current event returns. Pending events are
// kept; Resume re-enables stepping.
func (s *Scheduler) Halt() { s.halted = true }

// Resume clears a previous Halt.
func (s *Scheduler) Resume() { s.halted = false }

// Halted reports whether the scheduler is halted.
func (s *Scheduler) Halted() bool { return s.halted }

// peek returns the time of the next live event.
func (s *Scheduler) peek() (Time, bool) {
	for s.queue.Len() > 0 {
		ev := s.queue[0]
		if ev.dead {
			heap.Pop(&s.queue)
			continue
		}
		return ev.at, true
	}
	return 0, false
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}

func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.idx = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.idx = -1
	*h = old[:n-1]
	return ev
}
