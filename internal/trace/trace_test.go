package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func ev(t Type, seq uint32) Event {
	return Event{Time: time.Duration(seq) * time.Millisecond, Type: t, ConnID: 7, Seq: seq}
}

func TestTypeNamesRoundTrip(t *testing.T) {
	for ty := Type(0); ty < NumTypes; ty++ {
		name := ty.String()
		if name == "" || name == "unknown" {
			t.Fatalf("type %d has no name", ty)
		}
		back, ok := TypeByName(name)
		if !ok || back != ty {
			t.Fatalf("TypeByName(%q) = %v, %v", name, back, ok)
		}
	}
	if _, ok := TypeByName("nope"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestRingKeepsMostRecent(t *testing.T) {
	r := NewRing(4)
	for i := uint32(0); i < 10; i++ {
		r.Trace(ev(PacketSent, i))
	}
	if r.Total() != 10 || r.Dropped() != 6 || r.Cap() != 4 {
		t.Fatalf("total=%d dropped=%d cap=%d", r.Total(), r.Dropped(), r.Cap())
	}
	got := r.Events()
	if len(got) != 4 {
		t.Fatalf("events: %d", len(got))
	}
	for i, e := range got {
		if e.Seq != uint32(6+i) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, 6+i)
		}
	}
}

func TestRingConcurrent(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Trace(ev(PacketAcked, uint32(g*1000+i)))
				if i%100 == 0 {
					r.Events() // concurrent snapshots must be safe
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Total() != 8000 {
		t.Fatalf("total = %d", r.Total())
	}
	if got := len(r.Events()); got != 128 {
		t.Fatalf("snapshot size = %d", got)
	}
}

func TestCountersAggregates(t *testing.T) {
	c := NewCounters()
	c.Trace(Event{Type: PacketSent, Size: 100})
	c.Trace(Event{Type: PacketRetransmitted, Size: 50})
	c.Trace(Event{Type: PacketAcked, Size: 100})
	c.Trace(Event{Type: CwndUpdate, Cwnd: 8, ErrorRatio: 0.1, SRTT: 30 * time.Millisecond})
	c.Trace(Event{Type: MeasurementPeriod, Cwnd: 9, RateBps: 1e6, SRTT: 31 * time.Millisecond})
	c.Trace(Event{Type: CoordinationDecision, Case: 2, Factor: 2})
	c.Trace(Event{Type: CoordinationDecision, Case: 1}) // no rescale

	s := c.Snapshot()
	if s.Counts[PacketSent] != 1 || s.Counts[CoordinationDecision] != 2 {
		t.Fatalf("counts wrong: %+v", s.Counts)
	}
	if s.SentBytes != 150 || s.AckedBytes != 100 {
		t.Fatalf("bytes wrong: %+v", s)
	}
	if s.Cwnd != 9 || s.RateBps != 1e6 || s.SRTT != 31*time.Millisecond {
		t.Fatalf("gauges wrong: %+v", s)
	}
	if s.Rescales != 1 {
		t.Fatalf("rescales = %d", s.Rescales)
	}
	if c.Count(PacketAcked) != 1 {
		t.Fatalf("Count: %d", c.Count(PacketAcked))
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Trace(Event{Type: PacketSent, Size: 1})
				if i%50 == 0 {
					c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := c.Count(PacketSent); got != 8000 {
		t.Fatalf("count = %d", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	want := []Event{
		{Time: 1500 * time.Microsecond, Type: ConnState, ConnID: 0x1001, From: "closed", To: "syn-sent"},
		{Time: 2 * time.Millisecond, Type: PacketSent, ConnID: 0x1001, Seq: 2, MsgID: 1, Size: 1400, Marked: true},
		{Time: 3 * time.Millisecond, Type: CwndUpdate, ConnID: 0x1001, PrevCwnd: 2, Cwnd: 3,
			ErrorRatio: 0.25, SRTT: 30 * time.Millisecond, Reason: "ack"},
		{Time: 4 * time.Millisecond, Type: CoordinationDecision, ConnID: 0x1001, Case: 3,
			Kind: "resolution", Degree: 0.5, Factor: 1.8, WhenFrames: 10, Reason: "adapt-cond"},
		{Time: 5 * time.Millisecond, Type: RTOFired, ConnID: 0x1001, Seq: 9, RTO: 200 * time.Millisecond},
	}
	for _, e := range want {
		j.Trace(e)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("read %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"time\":1,\"name\":\"packet_sent\",\"conn\":1}\nnot json\n")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := ReadJSONL(strings.NewReader("{\"time\":1,\"name\":\"who_knows\",\"conn\":1}\n")); err == nil {
		t.Fatal("expected unknown-name error")
	}
}

func TestMultiFansOutAndElidesNil(t *testing.T) {
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Fatal("empty Multi should be nil")
	}
	r := NewRing(8)
	if Multi(nil, r) != Tracer(r) {
		t.Fatal("single-sink Multi should unwrap")
	}
	c := NewCounters()
	m := Multi(r, c)
	m.Trace(ev(PacketSent, 1))
	if r.Total() != 1 || c.Count(PacketSent) != 1 {
		t.Fatal("fan-out failed")
	}
}

func BenchmarkRingTrace(b *testing.B) {
	r := NewRing(4096)
	e := Event{Type: PacketSent, ConnID: 1, Seq: 1, Size: 1400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Trace(e)
	}
}

func BenchmarkCountersTrace(b *testing.B) {
	c := NewCounters()
	e := Event{Type: PacketSent, ConnID: 1, Seq: 1, Size: 1400}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Trace(e)
	}
}
