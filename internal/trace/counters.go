package trace

import (
	"math"
	"sync/atomic"
	"time"
)

// Counters is the aggregating sink: per-event-type counters plus
// last-value gauges of the transport state the events carry. Everything is
// atomic, so a metrics exporter (see the metricsexp package) can read a
// consistent-enough snapshot from any goroutine while connections trace
// into it; no locks sit on the machine's path.
type Counters struct {
	counts [NumTypes]atomic.Uint64

	// Gauges: last observed values, float64 bits / nanoseconds.
	cwnd       atomic.Uint64
	errorRatio atomic.Uint64
	rateBps    atomic.Uint64
	srttNs     atomic.Int64

	sentBytes  atomic.Uint64
	ackedBytes atomic.Uint64
	rescales   atomic.Uint64 // coordination decisions that rescaled the window
	shedBytes  atomic.Uint64 // payload bytes shed under local overload
}

// NewCounters returns an empty counters sink.
func NewCounters() *Counters { return &Counters{} }

// Trace implements Tracer.
func (c *Counters) Trace(ev Event) {
	if ev.Type >= NumTypes {
		return
	}
	c.counts[ev.Type].Add(1)
	switch ev.Type {
	case PacketSent, PacketRetransmitted:
		c.sentBytes.Add(uint64(ev.Size))
	case PacketAcked:
		c.ackedBytes.Add(uint64(ev.Size))
	case CwndUpdate:
		c.cwnd.Store(math.Float64bits(ev.Cwnd))
		c.errorRatio.Store(math.Float64bits(ev.ErrorRatio))
		c.srttNs.Store(int64(ev.SRTT))
	case MeasurementPeriod:
		c.cwnd.Store(math.Float64bits(ev.Cwnd))
		c.errorRatio.Store(math.Float64bits(ev.ErrorRatio))
		c.rateBps.Store(math.Float64bits(ev.RateBps))
		c.srttNs.Store(int64(ev.SRTT))
	case CoordinationDecision:
		if ev.Factor != 0 {
			c.rescales.Add(1)
		}
	case ShedUnmarked:
		c.shedBytes.Add(uint64(ev.Size))
	}
}

// Count returns the number of events of type t traced so far.
func (c *Counters) Count(t Type) uint64 {
	if t >= NumTypes {
		return 0
	}
	return c.counts[t].Load()
}

// Total returns the number of events traced so far across all types.
func (c *Counters) Total() uint64 {
	var n uint64
	for t := Type(0); t < NumTypes; t++ {
		n += c.counts[t].Load()
	}
	return n
}

// Snapshot is a point-in-time copy of every counter and gauge.
type Snapshot struct {
	Counts [NumTypes]uint64

	Cwnd       float64
	ErrorRatio float64
	RateBps    float64
	SRTT       time.Duration

	SentBytes  uint64
	AckedBytes uint64
	Rescales   uint64
	Resumes    uint64 // session resumptions (conn.resumed events)
	ShedBytes  uint64 // payload bytes shed under local overload
}

// Snapshot copies the current values.
func (c *Counters) Snapshot() Snapshot {
	var s Snapshot
	for i := range s.Counts {
		s.Counts[i] = c.counts[i].Load()
	}
	s.Cwnd = math.Float64frombits(c.cwnd.Load())
	s.ErrorRatio = math.Float64frombits(c.errorRatio.Load())
	s.RateBps = math.Float64frombits(c.rateBps.Load())
	s.SRTT = time.Duration(c.srttNs.Load())
	s.SentBytes = c.sentBytes.Load()
	s.AckedBytes = c.ackedBytes.Load()
	s.Rescales = c.rescales.Load()
	s.Resumes = s.Counts[ConnResumed]
	s.ShedBytes = c.shedBytes.Load()
	return s
}
