package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// jsonEvent is the JSONL wire schema, qlog-inspired: a flat envelope of
// time (milliseconds), event name and connection id, with the per-type
// payload under "data". Zero payload fields are omitted, so a trace stays
// greppable and compact.
type jsonEvent struct {
	TimeMs float64  `json:"time"`
	Name   string   `json:"name"`
	ConnID uint32   `json:"conn"`
	Data   jsonData `json:"data,omitempty"`
}

type jsonData struct {
	Seq    uint32 `json:"seq,omitempty"`
	MsgID  uint32 `json:"msg_id,omitempty"`
	Size   int    `json:"size,omitempty"`
	Marked bool   `json:"marked,omitempty"`

	Cwnd       float64 `json:"cwnd,omitempty"`
	PrevCwnd   float64 `json:"prev_cwnd,omitempty"`
	ErrorRatio float64 `json:"error_ratio,omitempty"`
	RawRatio   float64 `json:"raw_ratio,omitempty"`
	RateBps    float64 `json:"rate_bps,omitempty"`
	SRTTMs     float64 `json:"srtt_ms,omitempty"`
	RTOMs      float64 `json:"rto_ms,omitempty"`

	Case       int     `json:"case,omitempty"`
	Kind       string  `json:"kind,omitempty"`
	Degree     float64 `json:"degree,omitempty"`
	Factor     float64 `json:"factor,omitempty"`
	WhenFrames int     `json:"when_frames,omitempty"`

	From   string `json:"from,omitempty"`
	To     string `json:"to,omitempty"`
	Reason string `json:"reason,omitempty"`
}

func toJSON(ev Event) jsonEvent {
	return jsonEvent{
		TimeMs: float64(ev.Time) / float64(time.Millisecond),
		Name:   ev.Type.String(),
		ConnID: ev.ConnID,
		Data: jsonData{
			Seq:        ev.Seq,
			MsgID:      ev.MsgID,
			Size:       ev.Size,
			Marked:     ev.Marked,
			Cwnd:       ev.Cwnd,
			PrevCwnd:   ev.PrevCwnd,
			ErrorRatio: ev.ErrorRatio,
			RawRatio:   ev.RawRatio,
			RateBps:    ev.RateBps,
			SRTTMs:     float64(ev.SRTT) / float64(time.Millisecond),
			RTOMs:      float64(ev.RTO) / float64(time.Millisecond),
			Case:       ev.Case,
			Kind:       ev.Kind,
			Degree:     ev.Degree,
			Factor:     ev.Factor,
			WhenFrames: ev.WhenFrames,
			From:       ev.From,
			To:         ev.To,
			Reason:     ev.Reason,
		},
	}
}

func fromJSON(je jsonEvent) (Event, error) {
	t, ok := TypeByName(je.Name)
	if !ok {
		return Event{}, fmt.Errorf("trace: unknown event name %q", je.Name)
	}
	return Event{
		Time:       time.Duration(je.TimeMs * float64(time.Millisecond)),
		Type:       t,
		ConnID:     je.ConnID,
		Seq:        je.Data.Seq,
		MsgID:      je.Data.MsgID,
		Size:       je.Data.Size,
		Marked:     je.Data.Marked,
		Cwnd:       je.Data.Cwnd,
		PrevCwnd:   je.Data.PrevCwnd,
		ErrorRatio: je.Data.ErrorRatio,
		RawRatio:   je.Data.RawRatio,
		RateBps:    je.Data.RateBps,
		SRTT:       time.Duration(je.Data.SRTTMs * float64(time.Millisecond)),
		RTO:        time.Duration(je.Data.RTOMs * float64(time.Millisecond)),
		Case:       je.Data.Case,
		Kind:       je.Data.Kind,
		Degree:     je.Data.Degree,
		Factor:     je.Data.Factor,
		WhenFrames: je.Data.WhenFrames,
		From:       je.Data.From,
		To:         je.Data.To,
		Reason:     je.Data.Reason,
	}, nil
}

// JSONL writes one JSON object per event per line — the offline-analysis
// sink. Writes are serialised by a mutex; wrap the destination in a
// bufio.Writer (and Flush via Close) for high-rate traces.
type JSONL struct {
	mu  sync.Mutex
	w   io.Writer
	bw  *bufio.Writer
	err error
}

// NewJSONL returns a JSONL sink writing to w through an internal buffer.
// Call Close (or Flush) before reading the destination.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &JSONL{w: w, bw: bw}
}

// Trace implements Tracer. Encoding errors are sticky and reported by
// Close; tracing must never fail the transport.
func (j *JSONL) Trace(ev Event) {
	b, err := json.Marshal(toJSON(ev))
	if err != nil {
		return // unreachable: the schema is marshal-safe
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	if _, err := j.bw.Write(b); err != nil {
		j.err = err
		return
	}
	if err := j.bw.WriteByte('\n'); err != nil {
		j.err = err
	}
}

// Flush drains the internal buffer to the destination.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	return j.bw.Flush()
}

// Close flushes and returns the first write error, if any. It does not
// close the destination writer.
func (j *JSONL) Close() error { return j.Flush() }

// ReadJSONL parses a JSONL trace back into events, preserving order.
// Blank lines are skipped; a malformed line aborts with a line-numbered
// error.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(b, &je); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		ev, err := fromJSON(je)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
