package trace

// Event.Reason and Event.Kind form a closed vocabulary: iqstat's
// Case-1/Case-2 analysis and the metrics exporter match events by exact
// string, so a value emitted under an unregistered spelling is silently
// invisible to every consumer. Each value is therefore declared once here
// as a Reason* / Kind* constant; the tracekeys analyzer (internal/
// analysis/tracekeys) harvests this constant set and rejects raw string
// literals — and unregistered values — at every emission site.

// Congestion-window update reasons (CwndUpdate.Reason): which control
// decision moved the window.
const (
	ReasonAck          = "ack"          // additive growth on new acks
	ReasonLoss         = "loss"         // loss-proportional decrease
	ReasonTimeout      = "timeout"      // RTO collapse
	ReasonCoordination = "coordination" // application-coordinated rescale
)

// Packet-lifecycle reasons (PacketAcked/PacketLost/PacketAbandoned/
// RTOBackoff.Reason): what the sender concluded about the packet.
const (
	ReasonEack         = "eack"          // acked out of order via EACK block
	ReasonFast         = "fast"          // fast retransmit (dup-threshold)
	ReasonSkip         = "skip"          // unmarked fragment skipped under Case 1
	ReasonProbe        = "probe"         // FWD probe while acks are stalled
	ReasonRTO          = "rto"           // retransmission-timer expiry
	ReasonDeadline     = "deadline"      // play-out deadline passed in queue
	ReasonCase1Discard = "case1-discard" // discarded before segmentation (Case 1)
)

// Receive-path reasons (PacketReceived.Reason): why the packet was not
// delivered in order. Empty means in-order accept.
const (
	ReasonDup = "dup" // duplicate of already-delivered data
	ReasonOOO = "ooo" // out of order, buffered in the reassembly window
)

// Threshold-callback reasons (ThresholdCallbackFired.Reason): which
// error-ratio threshold fired.
const (
	ReasonUpper = "upper"
	ReasonLower = "lower"
)

// Coordination-decision reasons (AdaptDecision.Reason): how the
// coordinator classified the application's adaptation report.
const (
	ReasonAnnounced     = "announced"       // Case 3-1: adaptation announced via ADAPT_WHEN
	ReasonDiscardOn     = "discard-on"      // Case 1: reliability discard engaged
	ReasonDiscardOff    = "discard-off"     // Case 1: reliability discard released
	ReasonBadDegree     = "bad-degree"      // report rejected: |degree| >= 1
	ReasonFrameAboveMSS = "frame-above-mss" // no rescale: frames still span full segments
	ReasonRescale       = "rescale"         // Case 2/3 window rescale applied
)

// Close reasons (ConnState.Reason on the transition to "dead", and
// Machine.CloseReason): why the connection terminated. Exactly one is
// recorded per connection; the udpwire driver maps them onto its typed
// error taxonomy (ErrPeerDead, ErrRefused, ...).
const (
	ReasonLocalClose       = "local-close"       // orderly local Close, FIN exchange completed
	ReasonRemoteFin        = "remote-fin"        // peer sent FIN
	ReasonPeerDead         = "peer-dead"         // nothing heard for DeadInterval
	ReasonFinTimeout       = "fin-timeout"       // FIN exchange unanswered past the retry interval
	ReasonReset            = "rst"               // peer reset an established connection
	ReasonRefused          = "refused"           // RST before establishment (server refused)
	ReasonHandshakeTimeout = "handshake-timeout" // dial deadline passed in SYN-SENT
	ReasonAborted          = "aborted"           // abortive local teardown (eviction, Abort)
	ReasonSockErr          = "sock-err"          // the socket under the connection failed
	ReasonResumed          = "resumed"           // superseded by a resumed successor connection
)

// Fault kinds (FaultInjected.Reason): which fault the chaoswire middlebox
// applied to the datagram. Duplication reuses ReasonDup.
const (
	ReasonDrop       = "drop"
	ReasonReorder    = "reorder"
	ReasonCorrupt    = "corrupt"
	ReasonTruncate   = "truncate"
	ReasonDelay      = "delay"
	ReasonBlackhole  = "blackhole"
	ReasonRebind     = "rebind"
	ReasonEnobufs    = "enobufs"
	ReasonShortWrite = "short-write"
)

// Shedding reasons (ShedUnmarked.Reason): where in the send pipeline the
// overloaded machine abandoned unmarked data.
const (
	ReasonShedIngress = "shed-ingress" // discarded before segmentation
	ReasonShedQueue   = "shed-queue"   // queued packet abandoned to admit marked data
)

// Survivability reasons (RetrySent.Reason): why the serve engine answered a
// SYN with a stateless RETRY challenge instead of allocating state.
const (
	ReasonBadCookie   = "bad-cookie"   // a presented address-validation cookie failed verification
	ReasonEvictDenied = "evict-denied" // eviction of existing state demanded without path proof
)

// FEC reasons (FecRepairSent/FecRateChange.Reason): why the repair layer
// acted.
const (
	ReasonFecFlush = "fec-flush" // partial group's repair flushed at send-idle
	ReasonFecAdapt = "fec-adapt" // group size retuned to the measured loss rate
)

// KindNone is the Kind recorded when a threshold callback returned no
// adaptation report.
const KindNone = "nil"

// Reasons lists every registered Reason*/Kind* value; iqstat and tests use
// it to validate captured traces against the vocabulary.
func Reasons() []string {
	return []string{
		ReasonAck, ReasonLoss, ReasonTimeout, ReasonCoordination,
		ReasonEack, ReasonFast, ReasonSkip, ReasonProbe, ReasonRTO,
		ReasonDeadline, ReasonCase1Discard,
		ReasonDup, ReasonOOO,
		ReasonUpper, ReasonLower,
		ReasonAnnounced, ReasonDiscardOn, ReasonDiscardOff,
		ReasonBadDegree, ReasonFrameAboveMSS, ReasonRescale,
		ReasonLocalClose, ReasonRemoteFin, ReasonPeerDead, ReasonFinTimeout,
		ReasonReset, ReasonRefused, ReasonHandshakeTimeout, ReasonAborted,
		ReasonSockErr, ReasonResumed,
		ReasonDrop, ReasonReorder, ReasonCorrupt, ReasonTruncate, ReasonDelay,
		ReasonBlackhole, ReasonRebind, ReasonEnobufs, ReasonShortWrite,
		ReasonShedIngress, ReasonShedQueue,
		ReasonBadCookie, ReasonEvictDenied,
		ReasonFecFlush, ReasonFecAdapt,
		KindNone,
	}
}
