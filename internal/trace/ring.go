package trace

import "sync/atomic"

// Ring is a lock-free fixed-size ring buffer of events: the always-on
// flight recorder. Writers claim slots with a single atomic increment and
// publish events with an atomic pointer store, so tracing never blocks the
// protocol machine and concurrent connections can share one ring. Old
// events are overwritten once the buffer wraps.
type Ring struct {
	slots []atomic.Pointer[Event]
	pos   atomic.Uint64 // total events ever traced
}

// NewRing returns a ring holding the most recent n events (minimum 1).
func NewRing(n int) *Ring {
	if n < 1 {
		n = 1
	}
	return &Ring{slots: make([]atomic.Pointer[Event], n)}
}

// Trace implements Tracer.
func (r *Ring) Trace(ev Event) {
	e := ev // heap copy: the slot outlives the caller's stack frame
	i := r.pos.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(&e)
}

// Cap returns the ring's capacity.
func (r *Ring) Cap() int { return len(r.slots) }

// Total returns the number of events ever traced, including overwritten
// ones.
func (r *Ring) Total() uint64 { return r.pos.Load() }

// Dropped returns how many events have been overwritten.
func (r *Ring) Dropped() uint64 {
	if total := r.pos.Load(); total > uint64(len(r.slots)) {
		return total - uint64(len(r.slots))
	}
	return 0
}

// Events snapshots the buffered events, oldest first. Events published
// concurrently with the snapshot may or may not be included; each returned
// event is internally consistent.
func (r *Ring) Events() []Event {
	n := uint64(len(r.slots))
	end := r.pos.Load()
	start := uint64(0)
	if end > n {
		start = end - n
	}
	out := make([]Event, 0, end-start)
	for i := start; i < end; i++ {
		if e := r.slots[i%n].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}
