// Package trace is the IQ-RUDP observability subsystem: a qlog-inspired
// structured event stream emitted by the protocol machine at every decision
// point — connection state changes, per-packet lifecycle (sent, received,
// acked, lost, retransmitted, abandoned), retransmission-timer activity,
// congestion-window updates with the LDA inputs that produced them,
// measurement-period closes, threshold-callback firings, and the
// coordination decisions of the paper's Cases 1–3 together with the
// triggering AdaptationReport fields.
//
// A machine holds at most one Tracer (set via core.Config.Tracer). When the
// field is nil the instrumentation reduces to an untaken nil check per
// decision point: no Event is constructed, nothing escapes, nothing
// allocates. When set, Events are built on the stack and handed to the
// Tracer by value; whether tracing allocates is then the sink's business.
//
// Three sinks ship with the package:
//
//   - Ring: a lock-free fixed-size ring buffer for always-on flight
//     recording and post-mortem dumps;
//   - JSONL: a qlog-inspired one-object-per-line JSON writer for offline
//     analysis (cmd/iqstat reads this format);
//   - Counters: atomic per-event-type counters plus last-value gauges,
//     the feed for the metricsexp Prometheus/expvar exporter.
//
// Multi fans one event stream out to several sinks.
//
// Drivers may invoke the Tracer from multiple goroutines (udpwire calls it
// from the reader and from timer goroutines, serialised by the connection
// lock, but distinct connections may share one sink); every sink in this
// package is safe for concurrent use.
package trace

import "time"

// Type enumerates the event taxonomy.
type Type uint8

// Event types, one per instrumented decision point.
const (
	// ConnState records a connection state-machine transition (From → To).
	ConnState Type = iota
	// PacketSent records a first transmission of a DATA packet.
	PacketSent
	// PacketReceived records an accepted incoming DATA packet.
	PacketReceived
	// PacketAcked records a DATA packet leaving the flight window via a
	// cumulative ack, or via an EACK extent (Reason "eack").
	PacketAcked
	// PacketLost records a loss detection (Reason "dupack" or "sack").
	PacketLost
	// PacketRetransmitted records a repair transmission.
	PacketRetransmitted
	// PacketAbandoned records partial-reliability giving up on a packet or
	// message: Reason "skip" (loss of an unmarked packet within tolerance),
	// "deadline" (stale before first transmission), or "case1-discard"
	// (Case-1 sender discard before segmentation; Seq is then zero).
	PacketAbandoned
	// RTOFired records a retransmission-timeout expiry (RTO holds the
	// timeout that fired; Seq the packet it fired for).
	RTOFired
	// RTOBackoff records a Karn backoff of the retransmission timeout.
	RTOBackoff
	// CwndUpdate records a congestion-window change together with the LDA
	// inputs: PrevCwnd → Cwnd, the smoothed ErrorRatio and SRTT at the
	// decision, and Reason "ack", "loss", "timeout" or "coordination".
	CwndUpdate
	// MeasurementPeriod records a measurement-period close: RawRatio for
	// the period, the smoothed ErrorRatio, RateBps, SRTT and Cwnd.
	MeasurementPeriod
	// ThresholdCallbackFired records an application threshold callback
	// invocation (Reason "upper" or "lower"); Kind carries the returned
	// adaptation kind, or "nil" when the callback returned no report.
	ThresholdCallbackFired
	// CoordinationDecision records a transport re-adaptation decision for
	// the paper's Cases 1–3. Case is 1, 2 or 3; Kind, Degree and WhenFrames
	// mirror the triggering AdaptationReport; Factor is the applied window
	// rescale (zero when the decision was not to rescale, with Reason
	// explaining why).
	CoordinationDecision
	// TxError records a socket-level transmit failure observed by the
	// driver (Env.Emit cannot return an error); Size carries the number of
	// datagrams affected and Reason the OS error text.
	TxError
	// FaultInjected records a fault deliberately applied to a datagram by
	// the chaoswire middlebox (Reason "drop", "reorder", "corrupt",
	// "truncate", "delay", "blackhole", "rebind", "enobufs", "short-write",
	// or "dup" for duplication); Size carries the datagram length and ConnID
	// the connection the datagram belonged to, when parseable.
	FaultInjected
	// ConnResumed records a session resumption: a dialer renegotiated a
	// fresh connection ID after its predecessor died (dead interval, NAT
	// rebind). ConnID is the successor's ID, Seq carries the predecessor's
	// ID, and Size the number of carried-over marked messages (client side).
	ConnResumed
	// ShedUnmarked records graceful degradation under local overload: an
	// unmarked message or queued packet abandoned because the send backlog
	// exceeded Config.MaxSendBacklog (Reason "shed-ingress" before
	// segmentation, "shed-queue" for queued packets making room for marked
	// data); Size carries the shed payload bytes.
	ShedUnmarked
	// FecRepairSent records a REPAIR packet emitted by the sender's FEC
	// encoder: Seq is the group base sequence number, Size the parity
	// payload length, and Reason "" for a full group or "fec-flush" for a
	// partial group flushed at idle.
	FecRepairSent
	// FecRecovered records a data packet reconstructed from a repair group
	// on the receive path: Seq/MsgID/Size/Marked describe the recovered
	// packet, which then re-enters HandlePacket like a wire arrival.
	FecRecovered
	// FecRateChange records the sender's adaptive repair-rate update at a
	// measurement-period close: PrevCwnd → Cwnd carry the old and new group
	// size K (data packets per repair), ErrorRatio the smoothed loss signal
	// that drove it, Reason "fec-adapt".
	FecRateChange
	// EackClipped records the receiver truncating its EACK extent list at
	// the per-ack cap; Size is the number of out-of-order extents dropped
	// from the acknowledgement.
	EackClipped
	// RetrySent records the serve engine answering a SYN statelessly with a
	// RETRY challenge instead of allocating connection state: ConnID is the
	// initiator's proposed ID, Size the cookie length, and Reason "" for a
	// load-triggered challenge, "bad-cookie" when a presented cookie failed
	// verification, or "evict-denied" when the SYN asked to evict existing
	// state without proof of path ownership.
	RetrySent
	// AmpCapped records the anti-amplification gate suppressing an outgoing
	// packet to a not-yet-validated peer because sending it would exceed
	// three times the bytes received from that address; ConnID is the
	// affected connection and Size the suppressed packet's length.
	AmpCapped

	// NumTypes is the number of event types (array-sizing sentinel).
	NumTypes
)

var typeNames = [NumTypes]string{
	ConnState:              "state_change",
	PacketSent:             "packet_sent",
	PacketReceived:         "packet_received",
	PacketAcked:            "packet_acked",
	PacketLost:             "packet_lost",
	PacketRetransmitted:    "packet_retransmitted",
	PacketAbandoned:        "packet_abandoned",
	RTOFired:               "rto_fired",
	RTOBackoff:             "rto_backoff",
	CwndUpdate:             "cwnd_update",
	MeasurementPeriod:      "measurement_period",
	ThresholdCallbackFired: "threshold_callback",
	CoordinationDecision:   "coordination_decision",
	TxError:                "tx_error",
	FaultInjected:          "fault.injected",
	ConnResumed:            "conn.resumed",
	ShedUnmarked:           "shed.unmarked",
	FecRepairSent:          "fec.repair_sent",
	FecRecovered:           "fec.recovered",
	FecRateChange:          "fec.rate",
	EackClipped:            "eack.clipped",
	RetrySent:              "retry.sent",
	AmpCapped:              "amp.capped",
}

// String returns the stable wire name of the type (the qlog-style event
// name used by the JSONL schema).
func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return "unknown"
}

// TypeByName resolves a wire name back to its Type.
func TypeByName(name string) (Type, bool) {
	for i, n := range typeNames {
		if n == name {
			return Type(i), true
		}
	}
	return NumTypes, false
}

// Event is one machine event. It is a flat value type so call sites can
// build it on the stack; fields irrelevant to a given Type are zero.
type Event struct {
	Time   time.Duration // virtual time of the event
	Type   Type
	ConnID uint32

	// Packet lifecycle fields.
	Seq    uint32
	MsgID  uint32
	Size   int  // payload bytes
	Marked bool // must-deliver flag

	// Congestion / measurement fields.
	Cwnd       float64       // window after the event, packets
	PrevCwnd   float64       // window before the event, packets
	ErrorRatio float64       // smoothed error ratio at the event
	RawRatio   float64       // per-period raw ratio (measurement events)
	RateBps    float64       // delivery-rate estimate, bytes/s
	SRTT       time.Duration // smoothed RTT at the event
	RTO        time.Duration // retransmission timeout (RTO events)

	// Coordination fields (mirroring core.AdaptationReport).
	Case       int     // 1, 2 or 3
	Kind       string  // adaptation kind name
	Degree     float64 // adaptation degree
	Factor     float64 // applied window-rescale factor (0 = none)
	WhenFrames int     // delayed-adaptation horizon

	// State-change fields.
	From, To string

	// Reason qualifies the event ("ack", "loss", "timeout", "eack",
	// "deadline", "upper", "lower", ...).
	Reason string
}

// Tracer consumes machine events. Implementations must be safe for
// concurrent use and should return quickly: the machine invokes Trace
// synchronously from its driving context (the simulator event loop or the
// socket driver's lock).
type Tracer interface {
	Trace(ev Event)
}

// multi fans events out to several tracers.
type multi []Tracer

func (m multi) Trace(ev Event) {
	for _, t := range m {
		t.Trace(ev)
	}
}

// Multi returns a Tracer duplicating every event to all non-nil tracers.
// With zero or one non-nil argument it avoids the fan-out indirection.
func Multi(tracers ...Tracer) Tracer {
	out := make(multi, 0, len(tracers))
	for _, t := range tracers {
		if t != nil {
			out = append(out, t)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
