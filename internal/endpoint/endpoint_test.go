package endpoint

import (
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/sim"
	"github.com/cercs/iqrudp/internal/tcpsim"
)

func TestPairEstablishesAndDelivers(t *testing.T) {
	s := sim.New(1)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())
	snd, rcv := Pair(d, core.DefaultConfig(), core.DefaultConfig())
	rcv.Record = true
	if !WaitEstablished(s, snd, rcv, 5*time.Second) {
		t.Fatal("handshake failed")
	}
	if snd.Machine == nil || rcv.Machine == nil {
		t.Fatal("convenience Machine pointers not set")
	}
	var hooked []core.Message
	rcv.OnMessage = func(msg core.Message) { hooked = append(hooked, msg) }
	snd.T.Send([]byte("both paths"), true)
	s.RunUntil(s.Now() + time.Second)
	if len(rcv.Delivered) != 1 || len(hooked) != 1 {
		t.Fatalf("Record=%d hook=%d, want 1/1", len(rcv.Delivered), len(hooked))
	}
}

func TestCorruptFrameCounted(t *testing.T) {
	s := sim.New(2)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())
	snd, rcv := Pair(d, core.DefaultConfig(), core.DefaultConfig())
	WaitEstablished(s, snd, rcv, 5*time.Second)
	rcv.HandleFrame(&netem.Frame{Payload: []byte("garbage that is not a packet at all....................")})
	if rcv.Drops != 1 {
		t.Fatalf("drops = %d, want 1", rcv.Drops)
	}
}

func TestWaitEstablishedTimesOut(t *testing.T) {
	s := sim.New(3)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())
	snd, rcv := Pair(d, core.DefaultConfig(), core.DefaultConfig())
	// Black-hole the receiver before anything flows.
	d.Attach(rcv.Addr(), netem.HandlerFunc(func(f *netem.Frame) {}))
	if WaitEstablished(s, snd, rcv, 2*time.Second) {
		t.Fatal("established through a black hole?")
	}
	if s.Now() < 2*time.Second {
		t.Fatalf("gave up early at %v", s.Now())
	}
}

func TestPairTransportTCP(t *testing.T) {
	s := sim.New(4)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())
	mk := func(env core.Env) Transport { return tcpsim.NewMachine(tcpsim.DefaultConfig(), env) }
	snd, rcv := PairTransport(d, mk, mk)
	rcv.Record = true
	if !WaitEstablished(s, snd, rcv, 5*time.Second) {
		t.Fatal("tcp handshake failed")
	}
	if snd.Machine != nil {
		t.Fatal("Machine must be nil for non-core transports")
	}
	snd.T.Send([]byte("tcp via endpoint"), true)
	s.RunUntil(s.Now() + time.Second)
	if len(rcv.Delivered) != 1 {
		t.Fatalf("delivered %d", len(rcv.Delivered))
	}
}

func TestEnvAccessor(t *testing.T) {
	s := sim.New(5)
	d := netem.NewDumbbell(s, netem.DefaultDumbbell())
	snd, _ := Pair(d, core.DefaultConfig(), core.DefaultConfig())
	env := snd.Env()
	if env.Now() != s.Now() {
		t.Fatal("Env clock disagrees with the scheduler")
	}
	fired := false
	env.After(time.Second, func() { fired = true })
	s.RunUntil(2 * time.Second)
	if !fired {
		t.Fatal("Env timer did not fire")
	}
}
