// Package endpoint binds the sans-I/O IQ-RUDP machine (internal/core) to the
// emulated network (internal/netem): packets emitted by a machine are
// encoded to bytes, shipped as frames across the dumbbell, and decoded back
// on arrival. It is the simulation driver used by the core tests, the
// experiment harness and the examples.
package endpoint

import (
	"fmt"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/netem"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/sim"
)

// Transport is the interface both internal/core (IQ-RUDP) and
// internal/tcpsim (TCP Reno) machines satisfy, letting the experiment
// harness swap transports behind one endpoint type.
type Transport interface {
	StartClient()
	StartServer()
	Established() bool
	HandlePacket(p *packet.Packet)
	Send(data []byte, marked bool) error
	CanSend() bool
	QueuedPackets() int
	OnWritable(fn func())
	Close()
}

// Endpoint is one host running a transport machine on the dumbbell.
type Endpoint struct {
	// T is the transport machine (IQ-RUDP or TCP).
	T Transport
	// Machine is T as a *core.Machine when the endpoint runs IQ-RUDP
	// (nil for other transports).
	Machine *core.Machine

	d    *netem.Dumbbell
	addr netem.Addr
	peer netem.Addr

	// OnMessage, when set, receives every delivered application message.
	OnMessage func(msg core.Message)

	// Record, when true, appends delivered messages to Delivered.
	Record    bool
	Delivered []core.Message

	// Drops counts frames that failed to decode (corruption would be a
	// simulator bug; this stays zero).
	Drops int
}

// simEnv adapts the scheduler+network to core.Env for one endpoint.
type simEnv struct{ ep *Endpoint }

func (e simEnv) Now() time.Duration { return e.ep.d.Scheduler().Now() }

func (e simEnv) Emit(p *packet.Packet) {
	b, err := packet.Encode(p)
	if err != nil {
		panic(fmt.Sprintf("endpoint: encode failed: %v", err))
	}
	e.ep.d.Inject(&netem.Frame{Src: e.ep.addr, Dst: e.ep.peer, Payload: b})
}

func (e simEnv) Deliver(msg core.Message) {
	if e.ep.Record {
		e.ep.Delivered = append(e.ep.Delivered, msg)
	}
	if e.ep.OnMessage != nil {
		e.ep.OnMessage(msg)
	}
}

func (e simEnv) After(d time.Duration, fn func()) core.Timer {
	return e.ep.d.Scheduler().After(d, fn)
}

// HandleFrame implements netem.Handler.
func (ep *Endpoint) HandleFrame(f *netem.Frame) {
	p, err := packet.Decode(f.Payload)
	if err != nil {
		ep.Drops++
		return
	}
	ep.T.HandlePacket(p)
}

// Addr returns the endpoint's network address.
func (ep *Endpoint) Addr() netem.Addr { return ep.addr }

// Env returns the endpoint's core.Env, for constructing a transport machine
// after the endpoint is wired into the network.
func (ep *Endpoint) Env() core.Env { return simEnv{ep} }

// Pair creates a connected IQ-RUDP sender/receiver pair across the dumbbell:
// the sender on the left side, the receiver on the right. The handshake is
// initiated immediately; run the scheduler to complete it.
func Pair(d *netem.Dumbbell, senderCfg, receiverCfg core.Config) (*Endpoint, *Endpoint) {
	snd, rcv := PairTransport(d,
		func(env core.Env) Transport { return core.NewMachine(senderCfg, env) },
		func(env core.Env) Transport { return core.NewMachine(receiverCfg, env) })
	snd.Machine = snd.T.(*core.Machine)
	rcv.Machine = rcv.T.(*core.Machine)
	return snd, rcv
}

// PairTransport creates a connected pair with arbitrary transports built by
// the given factories (sender left, receiver right).
func PairTransport(d *netem.Dumbbell, mkSnd, mkRcv func(env core.Env) Transport) (*Endpoint, *Endpoint) {
	snd := &Endpoint{d: d}
	rcv := &Endpoint{d: d}
	snd.addr = d.AddLeft(snd)
	rcv.addr = d.AddRight(rcv)
	snd.peer, rcv.peer = rcv.addr, snd.addr
	snd.T = mkSnd(simEnv{snd})
	rcv.T = mkRcv(simEnv{rcv})
	rcv.T.StartServer()
	snd.T.StartClient()
	return snd, rcv
}

// WaitEstablished runs the scheduler until both machines are established or
// the deadline passes, reporting success.
func WaitEstablished(s *sim.Scheduler, a, b *Endpoint, deadline time.Duration) bool {
	for s.Now() < deadline {
		if a.T.Established() && b.T.Established() {
			return true
		}
		if !s.Step() {
			break
		}
	}
	return a.T.Established() && b.T.Established()
}
