// Package udpwire drives the sans-I/O IQ-RUDP machine over real UDP sockets
// with goroutines: a reader loop feeding decoded packets into the machine, a
// hierarchical-timing-wheel timer adapter with reusable handles (see
// wheeltimer.go), and a buffered delivery queue toward the application. It is the production driver; the simulator (internal/netem +
// internal/endpoint) is the reproducible one.
//
// Concurrency model: one mutex serialises every machine interaction (reader,
// timers, application sends). Deliveries and threshold callbacks are staged
// while the lock is held and dispatched after it is released, so application
// code may freely call back into the connection.
package udpwire

import (
	"math/rand/v2"
	"net"
	"sync"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/trace"
	"github.com/cercs/iqrudp/internal/uio"
	"github.com/cercs/iqrudp/internal/wheel"
)

// Conn is an IQ-RUDP connection over a UDP socket. Dialed connections own a
// connected socket; accepted connections share their acceptor's socket(s)
// and transmit through the sendTo hook (the udpwire Listener writes through
// its single socket, the serve engine enqueues onto a shard's batched
// writer).
type Conn struct {
	mu    sync.Mutex
	m     *core.Machine
	sock  *net.UDPConn
	peer  *net.UDPAddr
	epoch time.Time

	ownSocket   bool                                    // Close closes the socket (dialed conns)
	dialAddr    string                                  // dialed conns: the dial target, for Resume
	dialCfg     core.Config                             // dialed conns: the dial config, for Resume
	resumedFrom uint32                                  // predecessor ConnID when this conn was resumed
	local       net.Addr                                // accepted conns: the shared socket's address
	sendTo      func(b []byte, peer *net.UDPAddr) error // accepted conns: shared-socket writer
	onDetach    func(c *Conn)                           // accepted conns: demux-table removal
	detachOnce  sync.Once

	pendingMsgs []core.Message
	msgs        chan core.Message
	established chan struct{}
	estOnce     sync.Once
	closed      chan struct{}
	closeOnce   sync.Once

	dropped uint64 // deliveries discarded because the queue was full

	// Dialed-connection TX ring. Emit stages encoded datagrams into reused
	// slot buffers; flushTxLocked hands the whole ring to the batched writer
	// (sendmmsg on Linux) at the end of the machine interaction, before the
	// connection lock is released. All fields are guarded by mu.
	txb       *uio.TxBatcher
	txSlots   [][]byte  // per-datagram encode buffers, reused across flushes
	txN       int       // staged datagrams
	txMsgs    []uio.Msg // scratch batch handed to txb
	txFlushes uint64

	// Dialed-connection RX batcher (recvmmsg on Linux): readLoop drains a
	// whole kernel batch and applies it under a single lock acquisition, so
	// the responses it provokes (acks for every packet in the batch) leave as
	// one batched transmit. Owned by readLoop; not guarded by mu.
	rxb *uio.RxBatcher

	// Timing-wheel timer backend (see wheeltimer.go): the wheel driving
	// this connection's machine timers and the freelist of spent handles
	// awaiting reuse. wh is set at construction; wtFree is guarded by mu.
	wh     *wheel.Wheel
	wtFree []*wtimer
}

// txRingSize bounds the staged datagrams per flush: one machine interaction
// rarely emits more than a window burst, and an overful ring flushes early.
const txRingSize = 32

// rxBatch is the dialed-connection receive batch: large enough to absorb an
// ack burst for a window of data in one syscall.
const rxBatch = 16

// env adapts the socket world to core.Env. All methods are invoked with
// c.mu held.
type env struct{ c *Conn }

func (e env) Now() time.Duration { return time.Since(e.c.epoch) }

func (e env) Emit(p *packet.Packet) {
	c := e.c
	if c.peer == nil {
		return // passive side before the first SYN: nothing to address
	}
	if c.sendTo != nil {
		// Shared-socket acceptor path: the writer retains the buffer (the
		// serve engine queues it for its transmit loop), so it must own a
		// fresh allocation.
		b, err := packet.Encode(p)
		if err != nil {
			return // structurally impossible for machine-built packets
		}
		if err := c.sendTo(b, c.peer); err != nil {
			c.m.NoteTxError(1, err)
		}
		return
	}
	if c.txb != nil {
		c.stageTx(p)
		return
	}
	b, err := packet.Encode(p)
	if err != nil {
		return
	}
	if _, err := c.sock.Write(b); err != nil {
		c.m.NoteTxError(1, err)
	}
}

// stageTx encodes p into the next TX ring slot, reusing the slot's buffer.
// Called with mu held; a full ring flushes immediately.
//
//iqlint:borrow
func (c *Conn) stageTx(p *packet.Packet) {
	var buf []byte
	if c.txN < len(c.txSlots) {
		buf = c.txSlots[c.txN][:0]
	}
	b, err := packet.AppendEncode(buf, p)
	if err != nil {
		return // structurally impossible for machine-built packets
	}
	if c.txN < len(c.txSlots) {
		c.txSlots[c.txN] = b
	} else {
		c.txSlots = append(c.txSlots, b)
	}
	c.txN++
	if c.txN >= txRingSize {
		c.flushTxLocked()
	}
}

// flushTxLocked writes every staged datagram through the batched writer in
// one call (writev/sendmmsg on Linux, a write loop elsewhere). Called with
// mu held at the end of every machine interaction that can emit, so packets
// never linger past their lock section. Transmit failures are reported to
// the machine (Metrics.TxErrors plus a tx_error trace event) — Emit itself
// has no error path, and without this a dead socket would be silent.
func (c *Conn) flushTxLocked() {
	if c.txN == 0 {
		return
	}
	n := c.txN
	c.txN = 0
	c.txMsgs = c.txMsgs[:0]
	for i := 0; i < n; i++ {
		c.txMsgs = append(c.txMsgs, uio.Msg{B: c.txSlots[i]})
	}
	sent, err := c.txb.Send(c.txMsgs)
	c.txFlushes++
	if sent < n {
		c.m.NoteTxError(uint64(n-sent), err)
	}
}

func (e env) Deliver(msg core.Message) {
	e.c.pendingMsgs = append(e.c.pendingMsgs, msg)
}

// takeDeliveries drains the staged deliveries; called with mu held.
func (c *Conn) takeDeliveries() []core.Message {
	out := c.pendingMsgs
	c.pendingMsgs = nil
	return out
}

// dispatch pushes deliveries to the receive queue without holding the lock.
func (c *Conn) dispatch(msgs []core.Message) {
	for _, msg := range msgs {
		select {
		case c.msgs <- msg:
		case <-c.closed:
			return
		default:
			// Queue full: drop-newest keeps the connection live; the
			// transport's own reliability already ran its course, so this is
			// an application-side overrun, counted for visibility.
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
		}
	}
}

// newConn wires a connection around an existing machine-less state. A nil
// wh selects the process-wide default wheel (dialed connections and the
// plain Listener); the serve engine passes its shard's wheel.
func newConn(cfg core.Config, sock *net.UDPConn, peer *net.UDPAddr, wh *wheel.Wheel) *Conn {
	if wh == nil {
		wh = DefaultWheel()
	}
	c := &Conn{
		sock:        sock,
		peer:        peer,
		epoch:       time.Now(),
		msgs:        make(chan core.Message, 1024),
		established: make(chan struct{}),
		closed:      make(chan struct{}),
		wh:          wh,
	}
	c.m = core.NewMachine(cfg, env{c})
	c.m.OnEstablished(func() { c.estOnce.Do(func() { close(c.established) }) })
	c.m.OnClosed(func() { c.closeOnce.Do(func() { close(c.closed) }) })
	return c
}

// NewAccepted builds the passive side of a connection for an acceptor that
// demultiplexes a shared socket (the Listener in this package, or the serve
// engine's shards): local is the shared socket's bound address, sendTo
// transmits an encoded packet to a peer (a non-nil error is counted into the
// machine's TxErrors metric and traced as tx_error, so a dead shared socket
// or saturated transmit queue is never silent), and onDetach (optional) is
// invoked once when the connection closes so the acceptor can drop it from
// its demux tables. The returned connection is passively open: feed it the
// peer's SYN (and everything after) via HandleIncoming.
func NewAccepted(cfg core.Config, local net.Addr, peer *net.UDPAddr, sendTo func(b []byte, peer *net.UDPAddr) error, onDetach func(c *Conn)) *Conn {
	return NewAcceptedOn(nil, cfg, local, peer, sendTo, onDetach)
}

// NewAcceptedOn is NewAccepted with an explicit timing wheel driving the
// connection's machine timers: the serve engine passes its shard's wheel so
// timer dispatch stays shard-local. A nil wheel selects the process-wide
// default.
func NewAcceptedOn(wh *wheel.Wheel, cfg core.Config, local net.Addr, peer *net.UDPAddr, sendTo func(b []byte, peer *net.UDPAddr) error, onDetach func(c *Conn)) *Conn {
	c := newConn(cfg, nil, peer, wh)
	c.local = local
	c.sendTo = sendTo
	c.onDetach = onDetach
	c.mu.Lock()
	c.m.StartServer()
	c.mu.Unlock()
	return c
}

// Dial opens an IQ-RUDP connection to raddr ("host:port") and blocks until
// the handshake completes or timeout elapses (0 means 10 s). When
// cfg.ConnID is zero a random nonzero connection ID is chosen so that
// ConnID-demultiplexing servers (the serve engine) can tell dialers apart.
func Dial(raddr string, cfg core.Config, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ua, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	if cfg.ConnID == 0 {
		for cfg.ConnID == 0 {
			cfg.ConnID = rand.Uint32()
		}
	}
	c := newConn(cfg, sock, ua, nil)
	c.ownSocket = true
	c.dialAddr = raddr
	c.dialCfg = cfg
	if tb, err := uio.NewTxBatcher(sock, txRingSize); err == nil {
		c.txb = tb
	}
	// Receive buffers mirror the serve engine's sizing: one MSS-sized payload
	// plus header/attribute headroom. Both ends of an IQ-RUDP connection are
	// expected to run comparable MSS configurations.
	rxLen := cfg.MSS + 1024
	if rxLen < 4096 {
		rxLen = 4096
	}
	if rb, err := uio.NewConnectedRxBatcher(sock, uio.NewBufPool(rxLen), rxBatch); err == nil {
		c.rxb = rb
	}
	go c.readLoop()
	c.mu.Lock()
	c.m.StartClient()
	c.flushTxLocked()
	c.mu.Unlock()
	deadline := time.NewTimer(timeout) //iqlint:ignore timeafterloop -- one-shot dial deadline; the goroutine blocks on channel receive, which a wheel callback cannot serve
	defer deadline.Stop()
	select {
	case <-c.established:
		return c, nil
	case <-c.closed:
		// Died before establishment: RST from the server (refused) or a
		// socket failure underneath the dial. Tear resources down, then
		// surface the machine's recorded reason as a typed error.
		c.Close()
		err := c.Err()
		if err == ErrClosed {
			err = ErrRefused // pre-establishment death with no richer reason
		}
		return nil, &OpError{Op: "dial", Addr: raddr, Err: err}
	case <-deadline.C:
		c.abortWith(trace.ReasonHandshakeTimeout)
		return nil, &OpError{Op: "dial", Addr: raddr, Err: ErrHandshakeTimeout}
	}
}

// readLoop decodes incoming datagrams into the machine (dialed conns). Each
// kernel batch (recvmmsg on Linux, one datagram elsewhere) is applied under a
// single lock acquisition, and one packet is recycled across iterations: the
// machine only borrows it for the duration of HandlePacket, so the loop runs
// allocation-free in steady state.
func (c *Conn) readLoop() {
	if c.rxb == nil {
		c.readLoopSimple()
		return
	}
	var p packet.Packet
	for {
		msgs, err := c.rxb.Recv()
		if err != nil {
			// The socket died under the connection (or Close tore it down,
			// in which case the machine already recorded its reason).
			c.abortWith(trace.ReasonSockErr)
			return
		}
		c.handleBatch(msgs, &p)
		c.rxb.Release(msgs)
	}
}

// handleBatch feeds a batch of raw datagrams through the machine in one lock
// section: acks provoked by every packet in the batch accumulate in the TX
// ring and leave as a single batched transmit at the end.
//
//iqlint:borrow
func (c *Conn) handleBatch(msgs []uio.Msg, p *packet.Packet) {
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return
	default:
	}
	id := c.m.ConnID()
	for _, msg := range msgs {
		if err := packet.DecodeInto(p, msg.B, p.Payload); err != nil {
			continue // corrupt or foreign datagram
		}
		if id != 0 && p.ConnID != 0 && p.ConnID != id {
			continue // a different connection's packet (e.g. a predecessor
			// from the same port being FINed by the server)
		}
		c.m.HandlePacket(p)
	}
	c.flushTxLocked()
	out := c.takeDeliveries()
	c.mu.Unlock()
	c.dispatch(out)
}

// readLoopSimple is the one-datagram-per-read fallback used when the batched
// receiver could not be built over the socket.
func (c *Conn) readLoopSimple() {
	buf := make([]byte, 65536)
	var p packet.Packet
	for {
		n, err := c.sock.Read(buf)
		if err != nil {
			c.abortWith(trace.ReasonSockErr)
			return
		}
		if err := packet.DecodeInto(&p, buf[:n], p.Payload); err != nil {
			continue // corrupt or foreign datagram
		}
		if id := c.ID(); id != 0 && p.ConnID != 0 && p.ConnID != id {
			continue
		}
		c.handlePacket(&p)
	}
}

// HandleIncoming feeds one decoded packet into the connection; acceptors
// demultiplexing a shared socket call it from their read loops. Safe for
// concurrent use (the connection lock serialises the machine).
func (c *Conn) HandleIncoming(p *packet.Packet) { c.handlePacket(p) }

// ID returns the wire connection ID (zero on the passive side until the
// initiator's SYN has been handled).
func (c *Conn) ID() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.ConnID()
}

// SetPeer rebinds the connection to a migrated peer address (same ConnID
// seen from a new source address) and returns the previous address.
// Subsequent transmissions go to the new address.
func (c *Conn) SetPeer(addr *net.UDPAddr) *net.UDPAddr {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.peer
	c.peer = addr
	return old
}

// handlePacket feeds one packet through the machine and dispatches staged
// deliveries.
//
//iqlint:borrow
func (c *Conn) handlePacket(p *packet.Packet) {
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return
	default:
	}
	c.m.HandlePacket(p)
	c.flushTxLocked()
	out := c.takeDeliveries()
	c.mu.Unlock()
	c.dispatch(out)
}

// Send transmits one message (marked = must-deliver).
func (c *Conn) Send(data []byte, marked bool) error {
	return c.SendMsg(data, marked, nil)
}

// SendMsg transmits one message with a quality-attribute list — the
// CMwritev_attr path carrying ADAPT_* coordination attributes.
func (c *Conn) SendMsg(data []byte, marked bool, attrs *attr.List) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	err := c.m.SendMsg(data, marked, attrs)
	c.flushTxLocked()
	return err
}

// Recv returns the next delivered message, blocking until one arrives, the
// timeout elapses (0 = no timeout), or the connection closes.
func (c *Conn) Recv(timeout time.Duration) (core.Message, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout) //iqlint:ignore timeafterloop -- per-call receive deadline blocking on channel receive, not a protocol timer
		defer t.Stop()
		tc = t.C
	}
	select {
	case msg := <-c.msgs:
		return msg, nil
	case <-tc:
		return core.Message{}, ErrTimeout
	case <-c.closed:
		// Drain anything already queued before reporting closure, then
		// surface the typed close reason (ErrClosed for an orderly shutdown,
		// ErrPeerDead / ErrRefused / … otherwise).
		select {
		case msg := <-c.msgs:
			return msg, nil
		default:
			return core.Message{}, c.Err()
		}
	}
}

// Messages exposes the delivery queue for select-based consumers.
func (c *Conn) Messages() <-chan core.Message { return c.msgs }

// RegisterThresholds installs error-ratio callbacks; they run on the
// connection's timer goroutine with the connection lock held, so they must
// not call blocking Conn methods (returning an AdaptationReport is the
// intended interaction).
func (c *Conn) RegisterThresholds(upper, lower float64, onUpper, onLower core.ThresholdCallback) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.RegisterThresholds(upper, lower, onUpper, onLower)
}

// Report describes an application adaptation to the transport.
func (c *Conn) Report(rep *core.AdaptationReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Report(rep)
	c.flushTxLocked()
}

// SetLossTolerance updates this endpoint's receiver loss tolerance.
func (c *Conn) SetLossTolerance(tol float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.SetLossTolerance(tol)
}

// QueuedPackets returns segmented packets awaiting first transmission —
// the send backlog an application should pace against.
func (c *Conn) QueuedPackets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.QueuedPackets()
}

// CanSend reports whether window space is currently free.
func (c *Conn) CanSend() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.CanSend()
}

// Metrics snapshots the transport's measurements.
func (c *Conn) Metrics() core.Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Metrics()
}

// State reports the machine's connection phase ("established", "dead", ...).
func (c *Conn) State() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.State()
}

// Hists returns the histogram set this connection records into (nil when
// Config.Hists was not set). The histograms themselves are lock-free.
func (c *Conn) Hists() *core.Hists {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Hists()
}

// FlightRecord returns the connection's black box: the trace-event ring,
// final metrics and histogram summaries snapshotted when it closed
// abnormally. Nil while the connection is alive, after a clean close, or
// when Config.FlightEvents was zero. The record's Peer field is stamped
// with the current peer address.
func (c *Conn) FlightRecord() *core.FlightRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := c.m.FlightRecord()
	if rec != nil && rec.Peer == "" && c.peer != nil {
		rec.Peer = c.peer.String()
	}
	return rec
}

// Registry returns the connection's quality-attribute registry.
func (c *Conn) Registry() *attr.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Registry()
}

// TxFlushes counts batched transmit flushes on a dialed connection (zero on
// accepted connections, which transmit through their acceptor's writer).
func (c *Conn) TxFlushes() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.txFlushes
}

// DroppedDeliveries counts messages discarded because the application did
// not drain the receive queue.
func (c *Conn) DroppedDeliveries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// LocalAddr returns the socket's local address.
func (c *Conn) LocalAddr() net.Addr {
	if c.local != nil {
		return c.local
	}
	return c.sock.LocalAddr()
}

// RemoteAddr returns the peer address (the current one, after migration).
func (c *Conn) RemoteAddr() net.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.peer
}

// Close shuts the connection down gracefully: pending outgoing data drains
// and the FIN handshake completes before the socket is torn down, bounded by
// a five-second linger. The machine's OnClosed hook fires the closed signal
// when the drain finishes; an unresponsive peer hits the linger cap.
func (c *Conn) Close() error { return c.CloseWithin(5 * time.Second) }

// CloseWithin is Close with an explicit linger bound: the graceful drain
// (pending data, then the FIN exchange) is given at most linger before the
// connection is torn down anyway. The serve engine uses it to bound a
// whole-server drain.
func (c *Conn) CloseWithin(linger time.Duration) error {
	if linger <= 0 {
		linger = time.Nanosecond
	}
	c.mu.Lock()
	c.m.Close()
	c.flushTxLocked()
	c.mu.Unlock()
	lingerT := time.NewTimer(linger) //iqlint:ignore timeafterloop -- one-shot close linger; the caller blocks on channel receive
	defer lingerT.Stop()
	select {
	case <-c.closed:
	case <-lingerT.C:
		// The graceful drain outlived its bound: force the machine dead with
		// a typed reason (timers are gated on c.closed, so without this the
		// machine would be frozen mid-FIN with no recorded close reason).
		c.mu.Lock()
		c.m.AbortWith(trace.ReasonFinTimeout)
		c.mu.Unlock()
		c.closeOnce.Do(func() { close(c.closed) })
	}
	if c.ownSocket {
		c.sock.Close()
	}
	if c.onDetach != nil {
		c.detachOnce.Do(func() { c.onDetach(c) })
	}
	return nil
}

// Abort tears the connection down immediately without any wire traffic —
// no FIN, no drain. The serve engine uses it to evict a zombie connection
// whose peer address has been taken over by a new dialer: FINing the old
// connection would spray packets at the new one.
func (c *Conn) Abort() { c.abortWith(trace.ReasonAborted) }

// AbortWith is Abort recording an explicit close reason (one of the
// trace.Reason* close constants), so the cause an acceptor observed — e.g.
// a resumed successor superseding this connection — surfaces through Err
// and the trace stream.
func (c *Conn) AbortWith(reason string) { c.abortWith(reason) }

func (c *Conn) abortWith(reason string) {
	c.mu.Lock()
	c.m.AbortWith(reason)
	c.mu.Unlock()
	c.closeOnce.Do(func() { close(c.closed) })
	if c.ownSocket {
		c.sock.Close()
	}
	if c.onDetach != nil {
		c.detachOnce.Do(func() { c.onDetach(c) })
	}
}

// Closed reports whether the connection has shut down.
func (c *Conn) Closed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}

// Handshaked reports whether the handshake has completed. It never takes
// the connection lock, so it is safe from contexts that already hold it —
// the serve engine's anti-amplification gate calls it from inside the
// machine's Emit path.
func (c *Conn) Handshaked() bool {
	select {
	case <-c.established:
		return true
	default:
		return false
	}
}
