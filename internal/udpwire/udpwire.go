// Package udpwire drives the sans-I/O IQ-RUDP machine over real UDP sockets
// with goroutines: a reader loop feeding decoded packets into the machine, a
// timer adapter on time.AfterFunc, and a buffered delivery queue toward the
// application. It is the production driver; the simulator (internal/netem +
// internal/endpoint) is the reproducible one.
//
// Concurrency model: one mutex serialises every machine interaction (reader,
// timers, application sends). Deliveries and threshold callbacks are staged
// while the lock is held and dispatched after it is released, so application
// code may freely call back into the connection.
package udpwire

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/packet"
)

// Errors returned by the driver.
var (
	ErrClosed  = errors.New("udpwire: connection closed")
	ErrTimeout = errors.New("udpwire: timed out")
)

// Conn is an IQ-RUDP connection over a UDP socket.
type Conn struct {
	mu    sync.Mutex
	m     *core.Machine
	sock  *net.UDPConn
	peer  *net.UDPAddr
	epoch time.Time

	ownSocket bool // Close closes the socket (dialed conns)
	ln        *Listener

	pendingMsgs []core.Message
	msgs        chan core.Message
	established chan struct{}
	estOnce     sync.Once
	closed      chan struct{}
	closeOnce   sync.Once

	dropped uint64 // deliveries discarded because the queue was full
}

// env adapts the socket world to core.Env. All methods are invoked with
// c.mu held.
type env struct{ c *Conn }

func (e env) Now() time.Duration { return time.Since(e.c.epoch) }

func (e env) Emit(p *packet.Packet) {
	c := e.c
	if c.peer == nil {
		return // passive side before the first SYN: nothing to address
	}
	b, err := packet.Encode(p)
	if err != nil {
		return // structurally impossible for machine-built packets
	}
	if c.ln != nil {
		c.ln.sock.WriteToUDP(b, c.peer)
		return
	}
	c.sock.Write(b)
}

func (e env) Deliver(msg core.Message) {
	e.c.pendingMsgs = append(e.c.pendingMsgs, msg)
}

// timer wraps time.AfterFunc and re-locks around the machine callback.
type timer struct{ t *time.Timer }

func (t timer) Stop() bool { return t.t.Stop() }

func (e env) After(d time.Duration, fn func()) core.Timer {
	c := e.c
	return timer{t: time.AfterFunc(d, func() {
		c.mu.Lock()
		select {
		case <-c.closed:
			c.mu.Unlock()
			return
		default:
		}
		fn()
		out := c.takeDeliveries()
		c.mu.Unlock()
		c.dispatch(out)
	})}
}

// takeDeliveries drains the staged deliveries; called with mu held.
func (c *Conn) takeDeliveries() []core.Message {
	out := c.pendingMsgs
	c.pendingMsgs = nil
	return out
}

// dispatch pushes deliveries to the receive queue without holding the lock.
func (c *Conn) dispatch(msgs []core.Message) {
	for _, msg := range msgs {
		select {
		case c.msgs <- msg:
		case <-c.closed:
			return
		default:
			// Queue full: drop-newest keeps the connection live; the
			// transport's own reliability already ran its course, so this is
			// an application-side overrun, counted for visibility.
			c.mu.Lock()
			c.dropped++
			c.mu.Unlock()
		}
	}
}

// newConn wires a connection around an existing machine-less state.
func newConn(cfg core.Config, sock *net.UDPConn, peer *net.UDPAddr, ln *Listener) *Conn {
	c := &Conn{
		sock:        sock,
		peer:        peer,
		ln:          ln,
		epoch:       time.Now(),
		msgs:        make(chan core.Message, 1024),
		established: make(chan struct{}),
		closed:      make(chan struct{}),
	}
	c.m = core.NewMachine(cfg, env{c})
	c.m.OnEstablished(func() { c.estOnce.Do(func() { close(c.established) }) })
	c.m.OnClosed(func() { c.closeOnce.Do(func() { close(c.closed) }) })
	return c
}

// Dial opens an IQ-RUDP connection to raddr ("host:port") and blocks until
// the handshake completes or timeout elapses (0 means 10 s).
func Dial(raddr string, cfg core.Config, timeout time.Duration) (*Conn, error) {
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	ua, err := net.ResolveUDPAddr("udp", raddr)
	if err != nil {
		return nil, err
	}
	sock, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	c := newConn(cfg, sock, ua, nil)
	c.ownSocket = true
	go c.readLoop()
	c.mu.Lock()
	c.m.StartClient()
	c.mu.Unlock()
	select {
	case <-c.established:
		return c, nil
	case <-time.After(timeout):
		c.Close()
		return nil, fmt.Errorf("%w: handshake to %s", ErrTimeout, raddr)
	}
}

// readLoop decodes incoming datagrams into the machine (dialed conns).
func (c *Conn) readLoop() {
	buf := make([]byte, 65536)
	for {
		n, err := c.sock.Read(buf)
		if err != nil {
			c.Close()
			return
		}
		p, err := packet.Decode(buf[:n])
		if err != nil {
			continue // corrupt or foreign datagram
		}
		c.handlePacket(p)
	}
}

// handlePacket feeds one packet through the machine and dispatches staged
// deliveries.
func (c *Conn) handlePacket(p *packet.Packet) {
	c.mu.Lock()
	select {
	case <-c.closed:
		c.mu.Unlock()
		return
	default:
	}
	c.m.HandlePacket(p)
	out := c.takeDeliveries()
	c.mu.Unlock()
	c.dispatch(out)
}

// Send transmits one message (marked = must-deliver).
func (c *Conn) Send(data []byte, marked bool) error {
	return c.SendMsg(data, marked, nil)
}

// SendMsg transmits one message with a quality-attribute list — the
// CMwritev_attr path carrying ADAPT_* coordination attributes.
func (c *Conn) SendMsg(data []byte, marked bool, attrs *attr.List) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-c.closed:
		return ErrClosed
	default:
	}
	return c.m.SendMsg(data, marked, attrs)
}

// Recv returns the next delivered message, blocking until one arrives, the
// timeout elapses (0 = no timeout), or the connection closes.
func (c *Conn) Recv(timeout time.Duration) (core.Message, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		tc = t.C
	}
	select {
	case msg := <-c.msgs:
		return msg, nil
	case <-tc:
		return core.Message{}, ErrTimeout
	case <-c.closed:
		// Drain anything already queued before reporting closure.
		select {
		case msg := <-c.msgs:
			return msg, nil
		default:
			return core.Message{}, ErrClosed
		}
	}
}

// Messages exposes the delivery queue for select-based consumers.
func (c *Conn) Messages() <-chan core.Message { return c.msgs }

// RegisterThresholds installs error-ratio callbacks; they run on the
// connection's timer goroutine with the connection lock held, so they must
// not call blocking Conn methods (returning an AdaptationReport is the
// intended interaction).
func (c *Conn) RegisterThresholds(upper, lower float64, onUpper, onLower core.ThresholdCallback) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.RegisterThresholds(upper, lower, onUpper, onLower)
}

// Report describes an application adaptation to the transport.
func (c *Conn) Report(rep *core.AdaptationReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Report(rep)
}

// SetLossTolerance updates this endpoint's receiver loss tolerance.
func (c *Conn) SetLossTolerance(tol float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.SetLossTolerance(tol)
}

// QueuedPackets returns segmented packets awaiting first transmission —
// the send backlog an application should pace against.
func (c *Conn) QueuedPackets() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.QueuedPackets()
}

// CanSend reports whether window space is currently free.
func (c *Conn) CanSend() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.CanSend()
}

// Metrics snapshots the transport's measurements.
func (c *Conn) Metrics() core.Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Metrics()
}

// Registry returns the connection's quality-attribute registry.
func (c *Conn) Registry() *attr.Registry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.Registry()
}

// DroppedDeliveries counts messages discarded because the application did
// not drain the receive queue.
func (c *Conn) DroppedDeliveries() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// LocalAddr returns the socket's local address.
func (c *Conn) LocalAddr() net.Addr {
	if c.ln != nil {
		return c.ln.sock.LocalAddr()
	}
	return c.sock.LocalAddr()
}

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.peer }

// Close shuts the connection down gracefully: pending outgoing data drains
// and the FIN handshake completes before the socket is torn down, bounded by
// a five-second linger. The machine's OnClosed hook fires the closed signal
// when the drain finishes; an unresponsive peer hits the linger cap.
func (c *Conn) Close() error {
	c.mu.Lock()
	c.m.Close()
	c.mu.Unlock()
	select {
	case <-c.closed:
	case <-time.After(5 * time.Second):
		c.closeOnce.Do(func() { close(c.closed) })
	}
	if c.ownSocket {
		c.sock.Close()
	}
	if c.ln != nil {
		c.ln.forget(c.peer)
	}
	return nil
}

// Closed reports whether the connection has shut down.
func (c *Conn) Closed() bool {
	select {
	case <-c.closed:
		return true
	default:
		return false
	}
}
