package udpwire

import (
	"net"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
)

// TestWheelTimerRearmAllocFree pins the ISSUE-8 acceptance criterion:
// steady-state timer arms through the wheel adapter are allocation-free.
// Once the per-connection freelist is warm, every After draws a recycled
// handle and every Stop returns it — arm/stop and arm/fire cycles must not
// touch the heap.
func TestWheelTimerRearmAllocFree(t *testing.T) {
	c := NewAccepted(core.DefaultConfig(), nil,
		&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9},
		func(b []byte, peer *net.UDPAddr) error { return nil }, nil)
	defer c.Abort()

	e := env{c}
	fn := func() {}

	c.mu.Lock()
	defer c.mu.Unlock()
	for i := 0; i < 8; i++ {
		e.After(time.Hour, fn).Stop() // warm the freelist
	}
	allocs := testing.AllocsPerRun(1000, func() {
		e.After(time.Hour, fn).Stop()
	})
	if allocs != 0 {
		t.Fatalf("steady-state timer arm/stop allocates %.2f per cycle, want 0", allocs)
	}
}

// TestWheelTimerFireRecycles checks the fire path recycles the handle back
// to the freelist before running the machine callback, so an in-callback
// re-arm reuses the same handle.
func TestWheelTimerFireRecycles(t *testing.T) {
	c := NewAccepted(core.DefaultConfig(), nil,
		&net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 9},
		func(b []byte, peer *net.UDPAddr) error { return nil }, nil)
	defer c.Abort()

	e := env{c}
	fired := make(chan core.Timer, 1)
	var first *wtimer

	c.mu.Lock()
	var rearm func()
	rearm = func() {
		// Runs under c.mu from the wheel goroutine: the fired handle must
		// already be back on the freelist, so this After reuses it.
		fired <- e.After(time.Hour, func() {})
	}
	first = e.After(2*time.Millisecond, rearm).(*wtimer)
	c.mu.Unlock()

	select {
	case reused := <-fired:
		if reused.(*wtimer) != first {
			t.Fatal("in-callback re-arm did not reuse the fired handle")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("wheel timer did not fire")
	}

	c.mu.Lock()
	reused := reused2(c, first)
	c.mu.Unlock()
	if reused {
		t.Fatal("live handle found on the freelist")
	}
}

func reused2(c *Conn, w *wtimer) bool {
	for _, f := range c.wtFree {
		if f == w {
			return true
		}
	}
	return false
}
