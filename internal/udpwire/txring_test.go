package udpwire

import (
	"net"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/trace"
	"github.com/cercs/iqrudp/internal/uio"
)

// TestDialedTxRingFlushes verifies a dialed connection actually transmits
// through the batched TX ring: after a round trip the flush counter moved.
func TestDialedTxRingFlushes(t *testing.T) {
	ln, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	defer ln.Close()
	defer srv.Close()
	defer cli.Close()

	if err := cli.Send([]byte("ping"), true); err != nil {
		t.Fatalf("send: %v", err)
	}
	if _, err := srv.Recv(2 * time.Second); err != nil {
		t.Fatalf("recv: %v", err)
	}
	if got := cli.TxFlushes(); got == 0 {
		t.Fatal("dialed connection did not flush through the TX ring")
	}
	if got := srv.TxFlushes(); got != 0 {
		t.Fatalf("accepted connection should not use the TX ring, flushed %d", got)
	}
}

// TestTxErrorCounted breaks the socket under a dialed connection and checks
// the transmit failure surfaces in Metrics.TxErrors and as a tx_error trace
// event instead of vanishing.
func TestTxErrorCounted(t *testing.T) {
	// A real peer address so the connected-socket dial succeeds.
	peer, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatalf("peer socket: %v", err)
	}
	defer peer.Close()
	sock, err := net.DialUDP("udp", nil, peer.LocalAddr().(*net.UDPAddr))
	if err != nil {
		t.Fatalf("dial socket: %v", err)
	}

	counters := trace.NewCounters()
	cfg := core.DefaultConfig()
	cfg.Tracer = counters
	c := newConn(cfg, sock, peer.LocalAddr().(*net.UDPAddr), nil)
	c.ownSocket = true
	tb, err := uio.NewTxBatcher(sock, txRingSize)
	if err != nil {
		t.Fatalf("tx batcher: %v", err)
	}
	c.txb = tb
	sock.Close() // dead socket: every flush must now fail

	c.mu.Lock()
	c.m.StartClient() // stages the SYN
	c.flushTxLocked()
	txErrs := c.m.Metrics().TxErrors
	c.mu.Unlock()

	if txErrs == 0 {
		t.Fatal("transmit failure on a dead socket was not counted in Metrics.TxErrors")
	}
	if got := counters.Count(trace.TxError); got == 0 {
		t.Fatal("transmit failure did not emit a tx_error trace event")
	}
}
