package udpwire

import (
	"sync"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/wheel"
)

// The timing-wheel adapter behind core.Env.After: every connection timer
// (retransmission, handshake retry, measurement, keepalive, pacing, FEC
// flush) is a reusable wheel handle drawn from a per-connection freelist,
// so steady-state timer traffic — which re-arms on nearly every packet —
// allocates nothing and costs a linked-list splice instead of a runtime
// timer heap operation.
//
// Correctness leans on two layers:
//   - the wheel's generation counter: Arm and Stop bump it under the wheel
//     lock, and a dispatched callback carries the generation of the arm
//     that scheduled it. fire compares that against the handle's current
//     generation under c.mu, so a Stop or re-arm that beat the dispatch to
//     the lock suppresses it — Stop under c.mu is absolute.
//   - the core.Timer recycling contract (internal/core/env.go): the machine
//     drops a handle reference at Stop and at callback entry, so a handle
//     recycled by the freelist is never reachable through a stale machine
//     field.
//
// Deadline timers that guard blocking calls (Dial, Recv, CloseWithin,
// Accept) stay on runtime timers: they are per-call, not per-packet, and
// their goroutines block on channel receive, which a wheel callback cannot
// serve.

// defaultWheel drives the timers of dialed connections and plain-Listener
// accepts; serve shards run their own wheels (NewAcceptedOn). Lazily
// started, never stopped: one goroutine process-wide.
var (
	defaultWheelOnce sync.Once
	defaultWheel     *wheel.Wheel
)

// DefaultWheel returns the process-wide timing wheel, starting it on first
// use. Exposed so tests and soak harnesses can warm it before taking
// goroutine baselines.
func DefaultWheel() *wheel.Wheel {
	defaultWheelOnce.Do(func() { defaultWheel = wheel.New(0) })
	return defaultWheel
}

// wtimer adapts one wheel handle to core.Timer for one connection. Fired
// and stopped handles return to the connection's freelist (c.wtFree) and
// are reused by later After calls; all state is guarded by c.mu.
type wtimer struct {
	c    *Conn
	wt   *wheel.Timer
	fn   func() // machine callback for the current arm
	free bool   // on the freelist (spent), not currently owned by a machine field
}

// Stop implements core.Timer. Called with c.mu held (all machine
// interactions are). A spent handle is a no-op: the machine only ever
// Stops a handle it still owns, but armConnRetry-style re-arms can Stop
// the handle whose callback is currently running.
func (t *wtimer) Stop() bool {
	if t.free {
		return false
	}
	was := t.wt.Stop() // bumps the generation: a concurrent dispatch is suppressed
	t.fn = nil
	t.free = true
	t.c.wtFree = append(t.c.wtFree, t)
	return was
}

// fire is the wheel-goroutine callback (fixed at handle creation). It
// re-locks the connection, validates the generation, recycles the handle
// before running the machine callback (so an in-callback re-arm can reuse
// it), and finishes the machine interaction like every other driver entry
// point: flush staged TX, dispatch staged deliveries.
func (t *wtimer) fire(gen uint64) {
	c := t.c
	c.mu.Lock()
	if t.free || gen != t.wt.Gen() {
		c.mu.Unlock()
		return // stopped or re-armed after this dispatch was popped
	}
	select {
	case <-c.closed:
		c.mu.Unlock()
		return
	default:
	}
	fn := t.fn
	t.fn = nil
	t.free = true
	c.wtFree = append(c.wtFree, t)
	fn()
	c.flushTxLocked()
	out := c.takeDeliveries()
	c.mu.Unlock()
	c.dispatch(out)
}

// After implements core.Env. Called with c.mu held. Steady state pops a
// spent handle from the freelist and re-arms it: no allocation.
func (e env) After(d time.Duration, fn func()) core.Timer {
	c := e.c
	var t *wtimer
	if n := len(c.wtFree); n > 0 {
		t = c.wtFree[n-1]
		c.wtFree[n-1] = nil
		c.wtFree = c.wtFree[:n-1]
		t.free = false
	} else {
		t = &wtimer{c: c}
		t.wt = c.wh.NewTimer(t.fire)
	}
	t.fn = fn
	t.wt.Arm(d)
	return t
}
