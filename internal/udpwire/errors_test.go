package udpwire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/trace"
)

// Typed-error taxonomy tests: every way a connection dies must surface as a
// sentinel that works through identity, errors.Is, and the net.Error
// interface — including through the OpError wrapping Dial applies.

func TestDialHandshakeTimeoutTyped(t *testing.T) {
	// A bound but mute socket: SYNs vanish, the handshake can't complete.
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()

	start := time.Now()
	_, err = Dial(hole.LocalAddr().String(), core.DefaultConfig(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial into a black hole succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("dial timeout not honored")
	}
	if !errors.Is(err, ErrHandshakeTimeout) {
		t.Fatalf("errors.Is(err, ErrHandshakeTimeout) false: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("handshake timeout must be a net.Error with Timeout()=true: %v", err)
	}
	var op *OpError
	if !errors.As(err, &op) || op.Op != "dial" {
		t.Fatalf("want *OpError with Op=dial, got %v", err)
	}
}

func TestDialRefusedTyped(t *testing.T) {
	// A responder that answers every SYN with RST, like a draining server.
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	go func() {
		buf := make([]byte, 4096)
		var p packet.Packet
		for {
			n, ra, err := sock.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if packet.DecodeInto(&p, buf[:n], p.Payload) != nil {
				continue
			}
			rst := &packet.Packet{
				Type: packet.RST, ConnID: p.ConnID, Seq: p.Ack, Ack: p.Seq + 1,
			}
			if b, err := packet.Encode(rst); err == nil {
				sock.WriteToUDP(b, ra) //iqlint:ignore errdrop -- test responder, best effort
			}
		}
	}()

	_, err = Dial(sock.LocalAddr().String(), core.DefaultConfig(), 3*time.Second)
	if err == nil {
		t.Fatal("dial against an RST responder succeeded")
	}
	if !errors.Is(err, ErrRefused) {
		t.Fatalf("errors.Is(err, ErrRefused) false: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("refusal must be a non-timeout net.Error: %v", err)
	}
}

func TestDeadPeerTyped(t *testing.T) {
	cliCfg := core.DefaultConfig()
	cliCfg.Keepalive = 100 * time.Millisecond
	cliCfg.DeadInterval = 400 * time.Millisecond
	_, cli, srv := pair(t, core.DefaultConfig(), cliCfg)

	// The server side vanishes without a word: no FIN, no RST.
	srv.Abort()

	done := make(chan error, 1)
	go func() {
		_, err := cli.Recv(0)
		done <- err
	}()
	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock on dead peer")
	}
	if !errors.Is(err, ErrPeerDead) {
		t.Fatalf("Recv err = %v, want ErrPeerDead", err)
	}
	if err != ErrPeerDead {
		t.Fatalf("identity comparison broken: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("dead peer must be a net.Error with Timeout()=true: %v", err)
	}
	if got := cli.Err(); got != ErrPeerDead {
		t.Fatalf("Err() = %v, want ErrPeerDead", got)
	}
	if got := cli.CloseReason(); got != trace.ReasonPeerDead {
		t.Fatalf("CloseReason() = %q, want %q", got, trace.ReasonPeerDead)
	}
}

func TestErrNilWhileOpen(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	if err := cli.Err(); err != nil {
		t.Fatalf("open connection reported %v", err)
	}
	srv.Close()
	cli.Close()
	if err := cli.Err(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after local close Err() = %v, want ErrClosed", err)
	}
}

// TestResumeCarriesMarkedBacklog: a dialed connection that dies with marked
// data queued resumes and re-sends it; the listener-side successor delivers
// every payload.
func TestResumeCarriesMarkedBacklog(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	delivered := make(chan string, 256)
	go func() {
		for {
			c, err := ln.Accept(5 * time.Second)
			if err != nil {
				return
			}
			go func(c *Conn) {
				for {
					msg, err := c.Recv(0)
					if err != nil {
						return
					}
					if msg.Marked {
						delivered <- string(msg.Data)
					}
				}
			}(c)
		}
	}()

	cli, err := Dial(ln.Addr().String(), core.DefaultConfig(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 8; i++ {
		p := fmt.Sprintf("carry-%02d", i)
		if err := cli.Send([]byte(p), true); err != nil {
			t.Fatal(err)
		}
		want = append(want, p)
	}
	// Kill the connection before (some of) the backlog is acknowledged —
	// Abort is immediate, so queued/unacked marked messages strand.
	cli.Abort()

	nc, err := cli.Resume(5 * time.Second)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	defer nc.Close()
	if nc.ResumedFrom() != cli.ID() {
		t.Fatalf("ResumedFrom = %d, want %d", nc.ResumedFrom(), cli.ID())
	}

	got := map[string]bool{}
	deadline := time.After(10 * time.Second)
	for len(got) < len(want) {
		select {
		case p := <-delivered:
			got[p] = true
		case <-deadline:
			var missing []string
			for _, p := range want {
				if !got[p] {
					missing = append(missing, p)
				}
			}
			t.Fatalf("marked payloads lost across resume: %v", missing)
		}
	}
}

// TestCarryoverPayloadsIntact: the carried bytes are the original message
// bytes, including a multi-fragment message reassembled from its queue. The
// peer completes the handshake but never acks DATA, so nothing leaves the
// retransmission state before the abort — the test is deterministic.
func TestCarryoverPayloadsIntact(t *testing.T) {
	sock, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()
	go func() {
		buf := make([]byte, 65536)
		var p packet.Packet
		for {
			n, ra, err := sock.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if packet.DecodeInto(&p, buf[:n], p.Payload) != nil || p.Type != packet.SYN {
				continue
			}
			synack := &packet.Packet{
				Type: packet.SYNACK, ConnID: p.ConnID,
				Seq: 100, Ack: p.Seq + 1, Wnd: 512,
			}
			if b, err := packet.Encode(synack); err == nil {
				sock.WriteToUDP(b, ra) //iqlint:ignore errdrop -- test responder, best effort
			}
		}
	}()
	cli, err := Dial(sock.LocalAddr().String(), core.DefaultConfig(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, 5000) // > MSS: multi-fragment
	if err := cli.Send([]byte("small"), true); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send(big, true); err != nil {
		t.Fatal(err)
	}
	cli.Abort()
	cli.mu.Lock()
	carry := cli.m.CarryoverMarked()
	cli.mu.Unlock()
	if len(carry) != 2 {
		t.Fatalf("carried %d messages, want 2", len(carry))
	}
	if string(carry[0]) != "small" {
		t.Fatalf("carry[0] = %q", carry[0])
	}
	if !bytes.Equal(carry[1], big) {
		t.Fatalf("multi-fragment carryover corrupted: %d bytes, want %d", len(carry[1]), len(big))
	}
}
