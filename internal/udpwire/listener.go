package udpwire

import (
	"net"
	"sync"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/packet"
)

// Listener accepts IQ-RUDP connections on one UDP socket, demultiplexing by
// remote address. It is the simple, portable acceptor: one goroutine, one
// read buffer, one write path. The serve engine (internal/serve) is the
// scalable alternative — sharded ConnID demux over several sockets with
// batched I/O.
type Listener struct {
	sock *net.UDPConn
	cfg  core.Config

	mu     sync.Mutex
	conns  map[string]*Conn
	accept chan *Conn
	closed chan struct{}
	once   sync.Once
}

// Listen binds laddr ("host:port") and starts the demultiplexing loop. cfg
// configures every accepted connection (notably LossTolerance, the
// receiver-side reliability knob).
func Listen(laddr string, cfg core.Config) (*Listener, error) {
	ua, err := net.ResolveUDPAddr("udp", laddr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	ln := &Listener{
		sock:   sock,
		cfg:    cfg,
		conns:  make(map[string]*Conn),
		accept: make(chan *Conn, 16),
		closed: make(chan struct{}),
	}
	go ln.readLoop()
	return ln, nil
}

func (ln *Listener) readLoop() {
	buf := make([]byte, 65536)
	var p packet.Packet // recycled: connections only borrow it per packet
	for {
		n, raddr, err := ln.sock.ReadFromUDP(buf)
		if err != nil {
			ln.Close()
			return
		}
		if err := packet.DecodeInto(&p, buf[:n], p.Payload); err != nil {
			continue
		}
		c := ln.connFor(raddr, &p)
		if c != nil {
			c.handlePacket(&p)
		}
	}
}

// connFor finds or (on SYN) creates the connection for a remote address.
func (ln *Listener) connFor(raddr *net.UDPAddr, p *packet.Packet) *Conn {
	key := raddr.String()
	ln.mu.Lock()
	if c, ok := ln.conns[key]; ok {
		ln.mu.Unlock()
		return c
	}
	if p.Type != packet.SYN {
		ln.mu.Unlock()
		return nil // stray non-SYN from an unknown peer
	}
	c := NewAccepted(ln.cfg, ln.sock.LocalAddr(), raddr,
		func(b []byte, peer *net.UDPAddr) error {
			_, err := ln.sock.WriteToUDP(b, peer)
			return err
		},
		ln.forget)
	ln.conns[key] = c
	refused := false
	select {
	case ln.accept <- c:
	default:
		// Accept backlog full: refuse by forgetting; the client will retry.
		delete(ln.conns, key)
		refused = true
	}
	ln.mu.Unlock()
	if refused {
		// The refused conn's machine already ran StartServer; close it so
		// nothing (timers, delivery queue) leaks. Outside ln.mu: Close's
		// detach hook re-enters forget.
		c.Close()
		return nil
	}
	return c
}

// forget removes a closed connection from the demux table.
func (ln *Listener) forget(c *Conn) {
	addr := c.RemoteAddr()
	if addr == nil {
		return
	}
	ln.mu.Lock()
	if cur, ok := ln.conns[addr.String()]; ok && cur == c {
		delete(ln.conns, addr.String())
	}
	ln.mu.Unlock()
}

// Accept blocks until a new connection's handshake has begun, the timeout
// elapses (0 = no timeout), or the listener closes. The returned connection
// may still be completing its handshake; use Established/Recv as needed.
func (ln *Listener) Accept(timeout time.Duration) (*Conn, error) {
	var tc <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout) //iqlint:ignore timeafterloop -- per-call accept deadline blocking on channel receive, not a protocol timer
		defer t.Stop()
		tc = t.C
	}
	select {
	case c := <-ln.accept:
		return c, nil
	case <-tc:
		return nil, ErrTimeout
	case <-ln.closed:
		return nil, ErrClosed
	}
}

// Addr returns the bound address.
func (ln *Listener) Addr() net.Addr { return ln.sock.LocalAddr() }

// Close shuts the listener and every accepted connection down. Connections
// close concurrently: a serial sweep would stack up linger timeouts when
// peers have already vanished.
func (ln *Listener) Close() error {
	ln.once.Do(func() {
		close(ln.closed)
		ln.sock.Close()
		ln.mu.Lock()
		conns := make([]*Conn, 0, len(ln.conns))
		for _, c := range ln.conns {
			conns = append(conns, c)
		}
		ln.mu.Unlock()
		var wg sync.WaitGroup
		for _, c := range conns {
			wg.Add(1)
			go func(c *Conn) {
				defer wg.Done()
				c.Close()
			}(c)
		}
		wg.Wait()
	})
	return nil
}
