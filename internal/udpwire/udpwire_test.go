package udpwire

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
)

// pair spins up a loopback listener + dialed connection.
func pair(t *testing.T, srvCfg, cliCfg core.Config) (*Listener, *Conn, *Conn) {
	t.Helper()
	ln, err := Listen("127.0.0.1:0", srvCfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var srv *Conn
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, _ = ln.Accept(5 * time.Second)
	}()
	cli, err := Dial(ln.Addr().String(), cliCfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	wg.Wait()
	if srv == nil {
		t.Fatal("accept failed")
	}
	return ln, cli, srv
}

func TestDialListenRoundTrip(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	payload := []byte("over real sockets")
	if err := cli.Send(payload, true); err != nil {
		t.Fatal(err)
	}
	msg, err := srv.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg.Data, payload) {
		t.Fatalf("got %q", msg.Data)
	}
	if !msg.Marked {
		t.Fatal("marked flag lost")
	}
}

func TestManyMessagesOrdered(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	const n = 200
	for i := 0; i < n; i++ {
		if err := cli.Send([]byte(fmt.Sprintf("msg-%03d", i)), true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := srv.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%03d", i); string(msg.Data) != want {
			t.Fatalf("msg %d = %q, want %q", i, msg.Data, want)
		}
	}
}

func TestLargeMessageFragmentsOnWire(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	payload := bytes.Repeat([]byte{0x5A}, 200_000)
	if err := cli.Send(payload, true); err != nil {
		t.Fatal(err)
	}
	msg, err := srv.Recv(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(msg.Data, payload) {
		t.Fatalf("large payload corrupted: %d bytes", len(msg.Data))
	}
}

func TestBidirectional(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	if err := cli.Send([]byte("ping"), true); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := srv.Send([]byte("pong"), true); err != nil {
		t.Fatal(err)
	}
	msg, err := cli.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg.Data) != "pong" {
		t.Fatalf("got %q", msg.Data)
	}
}

func TestToleranceExchangedOnHandshake(t *testing.T) {
	srvCfg := core.DefaultConfig()
	srvCfg.LossTolerance = 0.25
	_, cli, _ := pair(t, srvCfg, core.DefaultConfig())
	// Allow the handshake attribute to land.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		cli.mu.Lock()
		tol := cli.m.PeerTolerance()
		cli.mu.Unlock()
		if tol == 0.25 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("peer tolerance not learned")
}

func TestMetricsAndRegistry(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	for i := 0; i < 50; i++ {
		cli.Send(make([]byte, 1400), true)
	}
	for i := 0; i < 50; i++ {
		if _, err := srv.Recv(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	mt := cli.Metrics()
	if mt.SentPackets < 50 || mt.AckedPackets == 0 {
		t.Fatalf("metrics implausible: %+v", mt)
	}
	if mt.SRTT <= 0 {
		t.Fatal("no RTT measured")
	}
	if cli.Registry() == nil {
		t.Fatal("registry missing")
	}
}

func TestRecvTimeout(t *testing.T) {
	_, cli, _ := pair(t, core.DefaultConfig(), core.DefaultConfig())
	start := time.Now()
	_, err := cli.Recv(50 * time.Millisecond)
	if err != ErrTimeout {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("timeout far too late")
	}
}

func TestCloseUnblocksRecvAndRejectsSend(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	done := make(chan error, 1)
	go func() {
		_, err := srv.Recv(0)
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Fatalf("recv err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
	if err := srv.Send([]byte("x"), true); err != ErrClosed {
		t.Fatalf("send err = %v", err)
	}
	_ = cli
}

func TestListenerMultipleClients(t *testing.T) {
	ln, err := Listen("127.0.0.1:0", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	const clients = 4
	srvs := make(chan *Conn, clients)
	go func() {
		for i := 0; i < clients; i++ {
			c, err := ln.Accept(5 * time.Second)
			if err != nil {
				return
			}
			srvs <- c
		}
	}()
	var clis []*Conn
	for i := 0; i < clients; i++ {
		c, err := Dial(ln.Addr().String(), core.DefaultConfig(), 5*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Send([]byte(fmt.Sprintf("hello-%d", i)), true)
		clis = append(clis, c)
	}
	got := map[string]bool{}
	starve := time.NewTimer(5 * time.Second)
	defer starve.Stop()
	for i := 0; i < clients; i++ {
		select {
		case s := <-srvs:
			msg, err := s.Recv(5 * time.Second)
			if err != nil {
				t.Fatal(err)
			}
			got[string(msg.Data)] = true
		case <-starve.C:
			t.Fatal("accept starved")
		}
	}
	if len(got) != clients {
		t.Fatalf("distinct messages = %d, want %d", len(got), clients)
	}
	_ = clis
}

func TestDialUnreachableTimesOut(t *testing.T) {
	start := time.Now()
	_, err := Dial("127.0.0.1:1", core.DefaultConfig(), 300*time.Millisecond)
	if err == nil {
		t.Fatal("dial to dead port succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("dial timeout not honored")
	}
}

func TestCloseFlushesPendingData(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	payload := bytes.Repeat([]byte{7}, 50_000)
	if err := cli.Send(payload, true); err != nil {
		t.Fatal(err)
	}
	cli.Close() // FIN waits for the pipeline to drain
	msg, err := srv.Recv(10 * time.Second)
	if err != nil {
		t.Fatalf("data lost on close: %v", err)
	}
	if !bytes.Equal(msg.Data, payload) {
		t.Fatal("payload corrupted across close")
	}
}

func TestUnmarkedDeliveryOnCleanLoopback(t *testing.T) {
	srvCfg := core.DefaultConfig()
	srvCfg.LossTolerance = 0.5
	_, cli, srv := pair(t, srvCfg, core.DefaultConfig())
	// Loopback doesn't lose packets, so unmarked messages all arrive.
	for i := 0; i < 20; i++ {
		cli.Send([]byte("u"), false)
	}
	for i := 0; i < 20; i++ {
		msg, err := srv.Recv(5 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if msg.Marked {
			t.Fatal("marked flag wrong")
		}
	}
}
