package udpwire

import (
	"math/rand/v2"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/packet"
	"github.com/cercs/iqrudp/internal/trace"
)

// Dialer bundles a dial target with its configuration so a connection can be
// re-established after it dies — the survivability half of the fault model: a
// connection aborted by the dead-interval detector (ErrPeerDead) or orphaned
// by a NAT rebind is replaced, not mourned.
type Dialer struct {
	Addr    string        // "host:port" dial target
	Config  core.Config   // transport configuration for each attempt
	Timeout time.Duration // handshake bound per attempt (0 = Dial's default)
}

// Dial opens a fresh connection to the dialer's target.
func (d *Dialer) Dial() (*Conn, error) { return Dial(d.Addr, d.Config, d.Timeout) }

// Redial replaces a dead (or dying) connection with a successor that resumes
// it: the new SYN carries a resume token naming the predecessor's ConnID so a
// ConnID-demultiplexing server can evict the zombie immediately instead of
// waiting out its dead interval, and every marked message the predecessor
// accepted but never saw fully acknowledged is re-sent on the successor —
// at-least-once delivery for marked data across the outage. Unmarked backlog
// is deliberately left behind: it was droppable on the wire, so it is
// droppable across a resume.
//
// prev may still be open (e.g. the application decided the peer moved before
// the dead-interval fired); it is aborted first. On success the returned
// connection reports the predecessor via ResumedFrom.
func (d *Dialer) Redial(prev *Conn) (*Conn, error) {
	if prev.dialAddr == "" {
		return nil, &OpError{Op: "resume", Addr: d.Addr, Err: errNotDialed}
	}
	if !prev.Closed() {
		prev.Abort()
	}
	prev.mu.Lock()
	prevID := prev.m.ConnID()
	carry := prev.m.CarryoverMarked()
	prev.mu.Unlock()

	cfg := d.Config
	cfg.ResumeToken = packet.AppendResumeToken(nil, prevID)
	for cfg.ConnID == 0 || cfg.ConnID == prevID {
		cfg.ConnID = rand.Uint32()
	}
	c, err := Dial(d.Addr, cfg, d.Timeout)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.resumedFrom = prevID
	c.mu.Unlock()
	if cfg.Tracer != nil {
		cfg.Tracer.Trace(trace.Event{
			Time:   time.Since(c.epoch),
			Type:   trace.ConnResumed,
			ConnID: cfg.ConnID,
			Seq:    prevID,
			Size:   len(carry),
		})
	}
	for _, b := range carry {
		if err := c.Send(b, true); err != nil {
			return c, &OpError{Op: "resume", Addr: d.Addr, Err: err}
		}
	}
	return c, nil
}

// Resume replaces this dead dialed connection with a successor to the same
// target under the same configuration (see Dialer.Redial for the semantics).
// Only dialed connections can resume; accepted connections belong to their
// server's lifecycle.
func (c *Conn) Resume(timeout time.Duration) (*Conn, error) {
	d := &Dialer{Addr: c.dialAddr, Config: c.dialCfg, Timeout: timeout}
	return d.Redial(c)
}

// ResumedFrom returns the ConnID of the dead predecessor this connection
// resumed, or zero for a connection that began life with a fresh Dial.
func (c *Conn) ResumedFrom() uint32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.resumedFrom
}

// errNotDialed reports a Resume/Redial on an accepted connection.
var errNotDialed = &wireErr{msg: "udpwire: resume: not a dialed connection"}
