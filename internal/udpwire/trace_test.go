package udpwire

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/core"
	"github.com/cercs/iqrudp/internal/trace"
)

// The driver invokes the Tracer from the reader goroutine and from timer
// goroutines; one sink may additionally be shared by both directions of a
// loopback pair. This test drives that worst case with every shipped sink
// attached at once — it is the repository's race-detector smoke for the
// observability path (see the Makefile's race-smoke target).
func TestTracedLoopbackAllSinks(t *testing.T) {
	ring := trace.NewRing(1024)
	counters := trace.NewCounters()
	var buf bytes.Buffer // JSONL serialises internally; shared Writer is fine
	jl := trace.NewJSONL(&buf)
	tracer := trace.Multi(ring, jl, counters)

	cfg := core.DefaultConfig()
	cfg.Tracer = tracer
	_, cli, srv := pair(t, cfg, cfg)

	const n = 100
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			cli.Send(make([]byte, 600), i%2 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			srv.Send(make([]byte, 600), true)
		}
	}()
	recv := func(c *Conn) {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, err := c.Recv(5 * time.Second); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}
	wg.Add(2)
	go recv(cli)
	go recv(srv)
	wg.Wait()

	if counters.Count(trace.PacketSent) < 2*n {
		t.Fatalf("counters saw %d sends, want at least %d", counters.Count(trace.PacketSent), 2*n)
	}
	if ring.Total() == 0 {
		t.Fatal("ring captured nothing")
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Timers keep tracing between Close and the counter read, so the
	// counters may run ahead of the flushed JSONL — never behind it.
	if uint64(len(events)) < 2*n || uint64(len(events)) > counters.Total() {
		t.Fatalf("JSONL has %d events, counters saw %d", len(events), counters.Total())
	}
	// Both endpoints of one connection share its negotiated id, so the
	// merged stream must agree on a single ConnID.
	conns := map[uint32]bool{}
	for _, ev := range events {
		conns[ev.ConnID] = true
	}
	if len(conns) != 1 {
		t.Fatalf("trace covers %d connection ids, want the one shared id", len(conns))
	}
}
