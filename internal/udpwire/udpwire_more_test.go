package udpwire

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"github.com/cercs/iqrudp/internal/attr"
	"github.com/cercs/iqrudp/internal/core"
)

func TestAttrsTravelTheWire(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	attrs := attr.NewList(
		attr.Attr{Name: "STEP", Value: attr.Int(42)},
		attr.Attr{Name: "FIELD", Value: attr.String_("density")},
		attr.Attr{Name: "SCALE", Value: attr.Float(0.5)},
		attr.Attr{Name: "FINAL", Value: attr.Bool(true)},
	)
	if err := cli.SendMsg([]byte("payload"), true, attrs); err != nil {
		t.Fatal(err)
	}
	msg, err := srv.Recv(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if msg.Attrs == nil {
		t.Fatal("attributes lost on the wire")
	}
	if msg.Attrs.IntOr("STEP", -1) != 42 ||
		msg.Attrs.FloatOr("SCALE", 0) != 0.5 ||
		!msg.Attrs.BoolOr("FINAL", false) {
		t.Fatalf("attrs = %v", msg.Attrs)
	}
	if v, _ := msg.Attrs.Get("FIELD"); v.String() != "density" {
		t.Fatalf("FIELD = %v", v)
	}
}

func TestKeepaliveOverRealSockets(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Keepalive = 50 * time.Millisecond
	cfg.DeadInterval = 5 * time.Second
	_, cli, srv := pair(t, cfg, cfg)
	// Total application silence; the probes keep both sides alive.
	time.Sleep(400 * time.Millisecond)
	if cli.Closed() || srv.Closed() {
		t.Fatal("idle connection died despite keepalive")
	}
	// And data still flows afterward.
	if err := cli.Send([]byte("still here"), true); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Recv(5 * time.Second); err != nil {
		t.Fatal(err)
	}
}

func TestDeadPeerDetectedOverRealSockets(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.Keepalive = 50 * time.Millisecond
	cfg.DeadInterval = 500 * time.Millisecond
	ln, err := Listen("127.0.0.1:0", core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(ln.Addr().String(), cfg, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// The "peer" vanishes without ceremony.
	ln.Close()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cli.Closed() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("dead peer never detected")
}

func TestCoordinationReportOverRealSockets(t *testing.T) {
	_, cli, _ := pair(t, core.DefaultConfig(), core.DefaultConfig())
	// Grow the window a little, then report a resolution adaptation.
	for i := 0; i < 20; i++ {
		cli.Send(make([]byte, 1400), true)
	}
	time.Sleep(100 * time.Millisecond)
	before := cli.Metrics().Cwnd
	cli.Report(&core.AdaptationReport{Kind: core.AdaptResolution, Degree: 0.2, FrameSize: 1000})
	after := cli.Metrics().Cwnd
	want := before / (1 - 0.2)
	if after < want*0.99 || after > want*1.01 {
		t.Fatalf("cwnd %v → %v, want ≈%v", before, after, want)
	}
	if cli.Metrics().WindowRescales != 1 {
		t.Fatalf("rescales = %d", cli.Metrics().WindowRescales)
	}
}

func TestConcurrentSendersOneConnection(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	const (
		senders = 8
		each    = 50
	)
	var wg sync.WaitGroup
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{byte(g + 1)}, 100)
			for i := 0; i < each; i++ {
				if err := cli.Send(payload, true); err != nil {
					t.Errorf("sender %d: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	counts := map[byte]int{}
	for i := 0; i < senders*each; i++ {
		msg, err := srv.Recv(10 * time.Second)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		counts[msg.Data[0]]++
	}
	for g := 0; g < senders; g++ {
		if counts[byte(g+1)] != each {
			t.Fatalf("sender %d delivered %d of %d", g, counts[byte(g+1)], each)
		}
	}
}

func TestDroppedDeliveriesCounted(t *testing.T) {
	_, cli, srv := pair(t, core.DefaultConfig(), core.DefaultConfig())
	// Flood without draining: the 1024-slot queue overruns and the overflow
	// is counted rather than wedging the connection.
	for i := 0; i < 3000; i++ {
		if err := cli.Send([]byte("x"), true); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && srv.DroppedDeliveries() == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	if srv.DroppedDeliveries() == 0 {
		t.Skip("queue never overran on this machine (very fast consumer scheduling)")
	}
	// The connection is still usable.
	if err := cli.Send([]byte("after-overrun"), true); err != nil {
		t.Fatal(err)
	}
}
