package udpwire

import (
	"net"

	"github.com/cercs/iqrudp/internal/trace"
)

// wireErr is a typed driver error. Each exported sentinel is a comparable
// singleton — existing callers test identity (err == ErrTimeout) — that
// also implements net.Error, so errors.Is and Timeout() work through any
// wrapping (see OpError).
type wireErr struct {
	msg     string
	timeout bool
}

func (e *wireErr) Error() string   { return e.msg }
func (e *wireErr) Timeout() bool   { return e.timeout }
func (e *wireErr) Temporary() bool { return e.timeout }

// Errors returned by the driver. All implement net.Error; the two deadline
// errors report Timeout() true.
var (
	// ErrClosed reports an operation on a connection that has shut down
	// (local Close, remote FIN, or abortive teardown).
	ErrClosed net.Error = &wireErr{msg: "udpwire: connection closed"}
	// ErrTimeout reports a Recv (or Accept) deadline that elapsed with the
	// connection still healthy.
	ErrTimeout net.Error = &wireErr{msg: "udpwire: timed out", timeout: true}
	// ErrRefused reports a connection that died before its handshake
	// completed — the peer answered with RST (e.g. a server whose accept
	// queue is full) or the socket failed underneath the dial.
	ErrRefused net.Error = &wireErr{msg: "udpwire: connection refused"}
	// ErrPeerDead reports a connection aborted because nothing was heard
	// from the peer for Config.DeadInterval. A dialed connection in this
	// state may be revived with Resume.
	ErrPeerDead net.Error = &wireErr{msg: "udpwire: peer dead", timeout: true}
	// ErrHandshakeTimeout reports a Dial whose handshake did not complete
	// within the dial timeout.
	ErrHandshakeTimeout net.Error = &wireErr{msg: "udpwire: handshake timed out", timeout: true}
)

// OpError wraps a typed driver error with operation context ("dial",
// "resume") and the remote address. Unwrap preserves errors.Is against the
// sentinels, and the net.Error methods delegate, so wrapping never hides
// Timeout().
type OpError struct {
	Op   string
	Addr string
	Err  error
}

func (e *OpError) Error() string {
	s := "udpwire: " + e.Op
	if e.Addr != "" {
		s += " " + e.Addr
	}
	return s + ": " + e.Err.Error()
}

func (e *OpError) Unwrap() error { return e.Err }

func (e *OpError) Timeout() bool {
	ne, ok := e.Err.(net.Error)
	return ok && ne.Timeout()
}

func (e *OpError) Temporary() bool {
	ne, ok := e.Err.(net.Error)
	return ok && ne.Temporary()
}

// reasonErr maps a machine close reason (trace.Reason* close constants)
// onto the driver's typed error taxonomy.
func reasonErr(reason string) error {
	switch reason {
	case trace.ReasonPeerDead:
		return ErrPeerDead
	case trace.ReasonRefused:
		return ErrRefused
	case trace.ReasonHandshakeTimeout:
		return ErrHandshakeTimeout
	default:
		// local-close, remote-fin, fin-timeout, rst, aborted, resumed,
		// sock-err, and the pre-reason linger path all read as "closed".
		return ErrClosed
	}
}

// Err returns the typed error describing why the connection closed, or nil
// while it is open. After closure it is stable: exactly one close reason is
// recorded per connection.
func (c *Conn) Err() error {
	if !c.Closed() {
		return nil
	}
	c.mu.Lock()
	reason := c.m.CloseReason()
	c.mu.Unlock()
	return reasonErr(reason)
}

// CloseReason reports the machine's recorded close reason ("" while open) —
// the same value carried by the ConnState trace event for the dead edge.
func (c *Conn) CloseReason() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m.CloseReason()
}
